"""The Spidergon topology (paper figure 1.a and section 2).

A Spidergon with an even number of nodes ``N`` is a bidirectional ring
augmented with *across* links connecting each node ``i`` to its
opposite node ``(i + N/2) mod N``.  Properties the paper highlights:

* regular, vertex-symmetric, edge-transitive,
* constant node degree 3 (cw, ccw, across),
* ``3N`` unidirectional links,
* network diameter ``ceil(N/4)``.
"""

from __future__ import annotations

from repro.topology.base import Topology, TopologyError
from repro.topology.ring import CLOCKWISE, COUNTERCLOCKWISE

ACROSS = "across"


class SpidergonTopology(Topology):
    """Spidergon over an even number of nodes.

    Port names are ``"cw"``, ``"ccw"`` and ``"across"``.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 4:
            raise TopologyError(
                f"a Spidergon needs at least 4 nodes, got {num_nodes}"
            )
        if num_nodes % 2 != 0:
            raise TopologyError(
                f"Spidergon requires an even node count, got {num_nodes}"
            )
        super().__init__(num_nodes, f"spidergon{num_nodes}")

    def out_ports(self, node: int) -> dict[str, int]:
        self.check_node(node)
        return {
            CLOCKWISE: (node + 1) % self.num_nodes,
            COUNTERCLOCKWISE: (node - 1) % self.num_nodes,
            ACROSS: self.opposite(node),
        }

    def opposite(self, node: int) -> int:
        """The node reached by the across link of *node*."""
        self.check_node(node)
        return (node + self.num_nodes // 2) % self.num_nodes

    def ring_distance(self, src: int, dst: int) -> int:
        """Distance between *src* and *dst* on the external ring only."""
        self.check_node(src)
        self.check_node(dst)
        clockwise = (dst - src) % self.num_nodes
        return min(clockwise, self.num_nodes - clockwise)
