"""A minimal directed graph with BFS shortest paths.

The topology classes expose their structure through this type so the
analysis code does not depend on any particular topology's internals.
``networkx`` is deliberately not used here — the library must stand on
its own; tests use networkx as an independent oracle instead.
"""

from __future__ import annotations

from collections import deque


class Graph:
    """Directed graph over integer nodes ``0 .. num_nodes-1``."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be > 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self._succ: list[list[int]] = [[] for _ in range(num_nodes)]
        self._edge_set: set[tuple[int, int]] = set()

    def add_edge(self, src: int, dst: int) -> None:
        """Add the directed edge ``src -> dst`` (idempotent).

        Raises:
            ValueError: if either endpoint is out of range or the edge
                is a self-loop (links never connect a node to itself).
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise ValueError(f"self-loop on node {src} is not allowed")
        if (src, dst) in self._edge_set:
            return
        self._edge_set.add((src, dst))
        self._succ[src].append(dst)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range [0, {self.num_nodes})"
            )

    def successors(self, node: int) -> tuple[int, ...]:
        """Nodes reachable from *node* in one hop."""
        self._check_node(node)
        return tuple(self._succ[node])

    def has_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self._edge_set

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def edges(self) -> list[tuple[int, int]]:
        """All directed edges in insertion order per source node."""
        return [
            (src, dst)
            for src in range(self.num_nodes)
            for dst in self._succ[src]
        ]

    def bfs_distances(self, source: int) -> list[int]:
        """Hop distances from *source*; unreachable nodes get -1."""
        self._check_node(source)
        dist = [-1] * self.num_nodes
        dist[source] = 0
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            next_dist = dist[node] + 1
            for succ in self._succ[node]:
                if dist[succ] == -1:
                    dist[succ] = next_dist
                    frontier.append(succ)
        return dist

    def shortest_path(self, source: int, target: int) -> list[int]:
        """One shortest path ``source -> ... -> target``.

        Ties are broken toward the lowest-numbered next hop, so the
        result is deterministic.

        Raises:
            ValueError: if *target* is unreachable from *source*.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target:
            return [source]
        parent = [-1] * self.num_nodes
        dist = [-1] * self.num_nodes
        dist[source] = 0
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for succ in sorted(self._succ[node]):
                if dist[succ] == -1:
                    dist[succ] = dist[node] + 1
                    parent[succ] = node
                    if succ == target:
                        frontier.clear()
                        break
                    frontier.append(succ)
        if dist[target] == -1:
            raise ValueError(
                f"node {target} is unreachable from {source}"
            )
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def is_strongly_connected(self) -> bool:
        """True when every node reaches every other node."""
        forward = self.bfs_distances(0)
        if any(d == -1 for d in forward):
            return False
        reverse = Graph(self.num_nodes)
        for src, dst in self._edge_set:
            reverse.add_edge(dst, src)
        return all(d != -1 for d in reverse.bfs_distances(0))
