"""Hypercube topology — the parallel-computing reference point.

The paper positions NoC design "in between the classical networking
solutions ... and the more specific communication and switching
architectures for high-performance parallel computing", and notes
that "high node degree reduces the average path length but increases
complexity".  The binary hypercube is the canonical high-degree
example: ``N = 2^d`` nodes of degree ``d = log2 N``, diameter ``d``,
average distance ``d/2`` — unbeatable path lengths, router cost
growing with ``log N`` ports (quadratically in the crossbar).

Including it lets the cost/performance studies quantify exactly the
complexity trade-off the paper uses to motivate constant-degree
topologies like the Spidergon.
"""

from __future__ import annotations

from repro.topology.base import Topology, TopologyError


class HypercubeTopology(Topology):
    """Binary hypercube over ``2^dimension`` nodes.

    Port names are ``"dim0" .. "dim{d-1}"``; port ``dimK`` connects
    node ``i`` to ``i XOR 2^K``.
    """

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise TopologyError(
                f"hypercube dimension must be >= 1, got {dimension}"
            )
        if dimension > 16:
            raise TopologyError(
                f"dimension {dimension} means {2**dimension} nodes; "
                "refusing (likely a mistake)"
            )
        super().__init__(2**dimension, f"hypercube{2**dimension}")
        self.dimension = dimension

    @classmethod
    def with_nodes(cls, num_nodes: int) -> "HypercubeTopology":
        """Hypercube with exactly *num_nodes* nodes.

        Raises:
            TopologyError: if *num_nodes* is not a power of two.
        """
        if num_nodes < 2 or num_nodes & (num_nodes - 1):
            raise TopologyError(
                f"hypercube needs a power-of-two node count, got "
                f"{num_nodes}"
            )
        return cls(num_nodes.bit_length() - 1)

    def out_ports(self, node: int) -> dict[str, int]:
        self.check_node(node)
        return {
            f"dim{k}": node ^ (1 << k) for k in range(self.dimension)
        }
