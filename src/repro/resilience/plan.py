"""Deterministic schedules of runtime link faults.

A :class:`FaultPlan` is data, not behaviour: an ordered tuple of
:class:`FaultEvent` records saying which physical connection fails or
recovers at which cycle.  Keeping the plan a frozen, dict-round-trip
friendly value type matters for the experiment harness — plans ride
inside :class:`~repro.experiments.runner.SimulationSettings`, whose
canonical JSON form is hashed into sweep cache keys, so two campaigns
with the same plan share cache entries and serial/parallel execution
see byte-identical inputs.

Execution belongs to :class:`~repro.resilience.injector.FaultInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RngStream
from repro.topology.base import Topology, TopologyError

_ACTIONS = ("fail", "repair")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault transition.

    Attributes:
        time: Cycle the transition takes effect (applied before that
            cycle's router phases run).
        src / dst: Endpoints of the physical connection; orientation
            is irrelevant (both directed channels are affected).
        action: ``"fail"`` or ``"repair"``.
    """

    time: int
    src: int
    dst: int
    action: str = "fail"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.src == self.dst:
            raise ValueError(f"link endpoints equal ({self.src})")

    @property
    def link(self) -> tuple[int, int]:
        """Canonical (low, high) connection this event touches."""
        return (
            (self.src, self.dst)
            if self.src <= self.dst
            else (self.dst, self.src)
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, time-ordered schedule of fault transitions.

    Attributes:
        events: The transitions, sorted by (time, link, action).
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.events,
                key=lambda e: (e.time, e.link, e.action),
            )
        )
        object.__setattr__(self, "events", ordered)
        # Replay the schedule: failing a dead link (or repairing a
        # healthy one) would raise mid-run, so reject it up front.
        down: set[tuple[int, int]] = set()
        for event in ordered:
            if event.action == "fail":
                if event.link in down:
                    raise ValueError(
                        f"plan fails link {event.link} at t="
                        f"{event.time} while it is already down"
                    )
                down.add(event.link)
            else:
                if event.link not in down:
                    raise ValueError(
                        f"plan repairs link {event.link} at t="
                        f"{event.time} while it is up"
                    )
                down.discard(event.link)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- constructors --------------------------------------------------

    @classmethod
    def single(
        cls,
        src: int,
        dst: int,
        at: int,
        repair_at: int | None = None,
    ) -> "FaultPlan":
        """One link failing at *at*, optionally healing at *repair_at*."""
        events = [FaultEvent(at, src, dst, "fail")]
        if repair_at is not None:
            if repair_at <= at:
                raise ValueError(
                    f"repair_at ({repair_at}) must be after at ({at})"
                )
            events.append(FaultEvent(repair_at, src, dst, "repair"))
        return cls(tuple(events))

    @classmethod
    def random_faults(
        cls,
        topology: Topology,
        count: int,
        at: int,
        repair_after: int | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """*count* distinct random links all failing at cycle *at*.

        Mirrors :meth:`FaultyTopology.with_random_faults
        <repro.topology.faults.FaultyTopology.with_random_faults>` but
        at runtime: picks are drawn from a dedicated
        :class:`~repro.sim.rng.RngStream`, so the plan depends only on
        ``(topology.name, count, at, seed)``.  With *repair_after*
        every fault is transient, healing at ``at + repair_after``.

        Unlike the build-time variant, picks are *not* filtered for
        connectivity — partitioning the network is a legitimate
        resilience scenario (it is what trips the stall watchdog).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = RngStream(
            seed, f"faultplan:{topology.name}:{count}@{at}"
        )
        candidates = sorted(
            {
                (min(link.src, link.dst), max(link.src, link.dst))
                for link in topology.links()
            }
        )
        if count > len(candidates):
            raise TopologyError(
                f"{topology.name} has only {len(candidates)} links; "
                f"cannot fail {count}"
            )
        rng.shuffle(candidates)
        events = []
        for src, dst in candidates[:count]:
            events.append(FaultEvent(at, src, dst, "fail"))
            if repair_after is not None:
                if repair_after <= 0:
                    raise ValueError(
                        f"repair_after must be > 0, got {repair_after}"
                    )
                events.append(
                    FaultEvent(at + repair_after, src, dst, "repair")
                )
        return cls(tuple(events))

    # -- validation ----------------------------------------------------

    def validate_for(self, topology: Topology) -> None:
        """Check every event references an existing link of *topology*.

        Raises:
            TopologyError: on an unknown node or non-adjacent pair.
        """
        for event in self.events:
            topology.check_node(event.src)
            topology.check_node(event.dst)
            if event.dst not in topology.neighbors(event.src):
                raise TopologyError(
                    f"plan references non-existent link "
                    f"{event.src}<->{event.dst} of {topology.name}"
                )

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form, inverse of :meth:`from_dict`."""
        return {
            "events": [
                {
                    "time": e.time,
                    "src": e.src,
                    "dst": e.dst,
                    "action": e.action,
                }
                for e in self.events
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            tuple(
                FaultEvent(
                    e["time"], e["src"], e["dst"], e.get("action", "fail")
                )
                for e in data["events"]
            )
        )
