"""Periodic invariant auditing of a live run.

Soak tests and fault campaigns want the model's structural invariants
(flit conservation, credit consistency, wormhole integrity — see
:class:`~repro.noc.invariants.InvariantChecker`) verified *during* the
run, not just at the end: a violation caught thousands of cycles after
the fact is much harder to bisect.  :class:`InvariantAuditor` is an
observer that runs the full check suite every *interval* simulated
cycles; a violation propagates as the usual
:class:`~repro.noc.invariants.InvariantViolation` and aborts the run
at the cycle the corruption became visible.

Wired up by :func:`repro.experiments.runner.run_simulation` when
:attr:`SimulationSettings.invariant_check_interval` is non-zero.
"""

from __future__ import annotations

from repro.noc.invariants import InvariantChecker
from repro.noc.network import Network
from repro.sim.observers import Observer


class InvariantAuditor(Observer):
    """Runs every invariant check each *interval* cycles.

    Args:
        network: The network to audit; the auditor registers itself
            on its simulator immediately.
        interval: Cycles between audits (>= 1).  Each audit is O(model
            state), so small intervals slow long runs considerably.

    Attributes:
        audits: Number of completed (passing) audits.
    """

    __slots__ = ("network", "interval", "audits", "_checker", "_next")

    def __init__(self, network: Network, interval: int) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.network = network
        self.interval = interval
        self.audits = 0
        self._checker = InvariantChecker(network)
        self._next = interval
        network.simulator.add_observer(self)

    def on_time_advanced(
        self, simulator, old_time: int, new_time: int
    ) -> None:
        if new_time < self._next:
            return
        self._checker.check_all()
        self.audits += 1
        # Re-arm past new_time (a single jump may skip several
        # intervals; one audit covers them all).
        periods = new_time // self.interval + 1
        self._next = periods * self.interval
