"""Stall detection: abort wedged runs with a diagnostic snapshot.

A wedged simulation — a routing deadlock, or traffic bound for a node
a fault plan disconnected — otherwise burns through ``max_cycles``
doing nothing.  :class:`StallWatchdog` is a kernel
:class:`~repro.sim.observers.Observer` that watches the network's
flit-movement counters once per simulated cycle and, when nothing has
moved for *stall_cycles* cycles while work is still outstanding, asks
the kernel to stop via :meth:`~repro.sim.kernel.Simulator.request_stop`
with a snapshot of where everything is stuck.  The network's
:meth:`~repro.noc.network.Network.run` turns that into
``RunResult.degraded = True`` plus ``extra["stall"]``.

The per-cycle cost is an integer compare; the O(network) snapshot is
built only when the watchdog actually trips.
"""

from __future__ import annotations

from repro.noc.network import Network
from repro.noc.signals import FlitMessage
from repro.sim.observers import Observer


class StallWatchdog(Observer):
    """Aborts *network*'s run after *stall_cycles* cycles of no flit
    movement with work outstanding.

    Args:
        network: The network to guard; the watchdog registers itself
            on its simulator immediately.
        stall_cycles: Quiet cycles tolerated before tripping.  Must
            comfortably exceed the longest legitimate quiet gap (low
            injection rates have multi-hundred-cycle interarrivals).

    Attributes:
        tripped: Whether the watchdog fired.
        snapshot: The diagnostic snapshot, once tripped.
    """

    __slots__ = (
        "network",
        "stall_cycles",
        "tripped",
        "snapshot",
        "_last_progress_cycle",
        "_last_progress",
        "_drops_at_progress",
    )

    def __init__(self, network: Network, stall_cycles: int) -> None:
        if stall_cycles < 1:
            raise ValueError(
                f"stall_cycles must be >= 1, got {stall_cycles}"
            )
        self.network = network
        self.stall_cycles = stall_cycles
        self.tripped = False
        self.snapshot: dict | None = None
        self._last_progress_cycle = 0
        self._last_progress = -1
        self._drops_at_progress = 0
        network.simulator.add_observer(self)

    def _progress_counter(self) -> int:
        """Monotone counter of *useful* progress: flits consumed.

        Deliberately excludes injections and fault drops — a network
        that only generates and kills traffic (every destination
        unreachable) is not making progress, and detecting exactly
        that churn is the watchdog's job.
        """
        stats = self.network.stats
        return stats.flits_consumed + stats.warmup_flits_consumed

    def on_time_advanced(
        self, simulator, old_time: int, new_time: int
    ) -> None:
        if self.tripped:
            return
        progress = self._progress_counter()
        if progress != self._last_progress:
            self._last_progress = progress
            self._last_progress_cycle = new_time
            self._drops_at_progress = self.network.stats.flits_dropped
            return
        if new_time - self._last_progress_cycle < self.stall_cycles:
            return
        dropping = (
            self.network.stats.flits_dropped != self._drops_at_progress
        )
        controller = getattr(self.network, "drain_controller", None)
        if controller is not None and controller.shields_watchdog(
            new_time
        ):
            # An armed drain episode with recent forced progress:
            # recovery gets its grace window before the run is
            # truncated.  Deliberately *not* a window reset — the
            # moment the shield lapses (drain stopped moving flits)
            # the already-elapsed quiet window trips immediately.
            return
        if not dropping and not self._work_outstanding():
            # Quiet because idle (e.g. zero injection rate), not
            # because stuck.  A network that dropped flits during the
            # window does not qualify — kill-churn (every destination
            # unreachable) often leaves the buffers momentarily empty
            # at the instant of this check, yet is exactly the
            # pathology the watchdog exists to catch.
            self._last_progress_cycle = new_time
            return
        self.tripped = True
        self.snapshot = self._build_snapshot(new_time)
        simulator.request_stop(
            f"no flit consumed for {new_time - self._last_progress_cycle}"
            f" cycles (watchdog limit {self.stall_cycles})",
            details=self.snapshot,
        )

    def _work_outstanding(self) -> bool:
        net = self.network
        return any(
            router.total_buffered_flits() for router in net.routers
        ) or any(
            interface.backlog_packets for interface in net.interfaces
        )

    def _build_snapshot(self, now: int) -> dict:
        """JSON-ready picture of where the traffic is wedged."""
        net = self.network
        blocked = {
            router.node: router.occupancy_snapshot()
            for router in net.routers
            if router.total_buffered_flits()
        }
        backlogs = {
            interface.node: interface.backlog_packets
            for interface in net.interfaces
            if interface.backlog_packets
        }
        in_flight = sum(
            1
            for event in net.simulator.pending_events()
            if isinstance(event.message, FlitMessage)
        )
        return {
            "cycle": now,
            "last_progress_cycle": self._last_progress_cycle,
            "stall_cycles": self.stall_cycles,
            "flits_injected": net.stats.flits_injected,
            "flits_consumed": (
                net.stats.flits_consumed
                + net.stats.warmup_flits_consumed
            ),
            "flits_dropped": net.stats.flits_dropped,
            "flits_in_flight": in_flight,
            "blocked_routers": blocked,
            "source_backlogs": backlogs,
            "dead_links": sorted(
                f"{a}-{b}" for a, b in net.dead_links
            ),
        }
