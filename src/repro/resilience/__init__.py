"""Resilience: runtime faults, stall detection, periodic auditing.

Everything the robustness story needs on the *model* side:

* :class:`FaultPlan` / :class:`FaultEvent` — deterministic, seeded
  schedules of link failures and repairs (data, cache-key friendly);
* :class:`FaultInjector` — applies a plan to a running
  :class:`~repro.noc.network.Network` through ordinary kernel timers;
* :class:`FallbackTable` — residual-graph shortest-path detours
  consulted only when a primary route hits a dead port;
* :class:`StallWatchdog` — aborts wedged runs with a diagnostic
  snapshot instead of spinning to the horizon;
* :class:`DrainController` / :func:`drain_ring` — DRAIN-style
  deadlock *recovery*: periodic forced rotation of in-flight flits
  along a Hamiltonian loop, with adaptive spin frequency (pairs with
  the non-deadlock-free adaptive routing algorithms);
* :class:`InvariantAuditor` — periodic in-run execution of the full
  invariant suite;
* :func:`apply_chaos` — env-driven worker failure injection for the
  crash-tolerant campaign executor's tests and CI smoke step.

The *executor* side (timeouts, retries, pool rebuilds, resumable
manifests) lives in :mod:`repro.experiments.parallel`.
"""

from repro.resilience.auditor import InvariantAuditor
from repro.resilience.chaos import ChaosError, apply_chaos
from repro.resilience.drain import (
    DrainController,
    DrainError,
    drain_ring,
)
from repro.resilience.fallback import FallbackTable, normalise_link
from repro.resilience.injector import FaultInjector
from repro.resilience.plan import FaultEvent, FaultPlan
from repro.resilience.watchdog import StallWatchdog

__all__ = [
    "ChaosError",
    "DrainController",
    "DrainError",
    "FallbackTable",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantAuditor",
    "StallWatchdog",
    "apply_chaos",
    "drain_ring",
    "normalise_link",
]
