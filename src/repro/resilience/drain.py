"""Deadlock *recovery*: periodic forced drain along a preset ring.

The repo's deadlock story so far is pure *avoidance* — dateline VC
disciplines, dimension-order turn restrictions (see docs/deadlock.md).
The adaptive algorithms in :mod:`repro.routing.adaptive` drop that
guarantee (``deadlock_free = False``): under load they can close a
cyclic channel dependency and wedge.  This module supplies the
matching recovery mechanism, modelled after DRAIN (Parasar et al.,
HPCA 2020): when the network stops consuming flits, periodically
*spin* buffered flits one hop along a preconfigured closed loop of
routers, breaking every dependency cycle the loop intersects without
dropping a single flit.

Two pieces:

* :func:`drain_ring` — derive the loop: a Hamiltonian cycle over the
  topology's directed links, from closed-form candidates (identity
  ring, Gray code, grid serpentine) validated against the real
  adjacency, falling back to a budgeted Warnsdorff backtracking
  search.  Raises :class:`DrainError` when no cycle exists (e.g. an
  odd-by-odd mesh) — pass an explicit ``ring=`` instead.

* :class:`DrainController` — the runtime.  A cheap periodic kernel
  timer (the :class:`~repro.resilience.injector.FaultInjector` idiom:
  priority-0 events with a handler, applied before the cycle's
  advance/send phases) compares the network's consumed-flit counter
  across a ``detect_cycles`` window; a quiet window with work
  outstanding arms drain mode, which executes *epochs*: one forced
  rotation of the loop per epoch, at an interval that adapts
  DRANO-style — halved while epochs fail to restart consumption,
  doubled (and eventually disarmed) once post-drain progress is
  observed.

An epoch moves flits through the routers' forced-move primitives
(:meth:`~repro.noc.router.Router.drain_pop_for_send` and friends),
which keep wormhole switching and credit bookkeeping exact:

* *send* — the head flit of the loop output queue at ring node ``k``
  crosses the loop link into ``from{k}`` lane of node ``k+1`` with
  zero wire delay (skipped while the real wire still carries flits
  for that lane, which would reorder a worm);
* *pull* — one input-lane head flit advances into an output queue:
  body flits follow their established wormhole switching, head flits
  follow their parked routing decision when it has room and are
  otherwise *misrouted* onto the loop queue (switching state and all,
  so their body flits follow normally) — the DRAIN move that breaks
  the dependency cycle; routing re-decides downstream.

Eligibility is planned as a fixpoint over the whole loop before
anything moves: a send frees a queue slot that may enable the pull
behind it, a pull frees a lane slot that may enable the send into
it — exactly how a full rotation shifts every flit of a wedged cycle
simultaneously.

Forced moves never violate per-packet flit order: a queue mid-worm
(owner set) never admits a foreign head, exactly as in normal
allocation.  This bounds what drain can recover — the same bound
DRAIN itself has, where a packet is assumed to fit its VC buffer.
Wedges whose loop queues are owner-free (each worm's buffered flits
sit contiguously behind or ahead of its parked head) rotate and
recover; a wedge in which *every* loop queue is mid-worm — worms
straddling queue, upstream lane and source simultaneously — offers
no order-preserving move at all, so epochs spin zero flits, the
watchdog shield lapses, and the run is truncated with the usual
diagnostic instead of silently corrupting worms.  The deadlock tests
pin one configuration of each kind.

The controller registers itself as a kernel
:class:`~repro.sim.observers.Observer` (with no-op hooks): forced
moves bypass the batched engine's per-link records, so attaching one
must — and, through the observer registration, automatically does —
make that engine fall back loudly to the classic event loop.

Determinism: detection thresholds, the ring, the plan fixpoint and
the timer cadence are all pure functions of simulation state, so a
drain-recovered run is byte-identical across repeats and event-driven
engines — the property the recovery tests pin.
"""

from __future__ import annotations

from repro.noc.network import Network
from repro.noc.signals import FlitMessage
from repro.sim.messages import Message
from repro.sim.observers import Observer

__all__ = ["DrainController", "DrainError", "drain_ring"]


class DrainError(RuntimeError):
    """No usable drain ring for a topology, or an invalid override."""


# -- ring derivation ----------------------------------------------------


def _is_cycle(order: list[int], neighbors: list[set]) -> bool:
    """Whether *order* is a closed walk of adjacent, distinct nodes."""
    if len(set(order)) != len(order):
        return False
    return all(
        order[(i + 1) % len(order)] in neighbors[order[i]]
        for i in range(len(order))
    )


def _gray_candidate(n: int) -> list[int] | None:
    """Reflected Gray code order (a Hamiltonian cycle on hypercubes)."""
    if n < 2 or n & (n - 1):
        return None
    return [i ^ (i >> 1) for i in range(n)]


def _grid_candidates(topology) -> list[list[int]]:
    """Serpentine cycles for row-major grids (meshes and tori).

    The classic construction — down column 0, back up serpentining
    through columns 1..C-1 — closes iff the serpentine spans an even
    number of rows; both orientations are emitted and the caller
    validates against the real adjacency (so removed links or
    non-grid numbering simply disqualify the candidate).
    """
    rows = getattr(topology, "rows", None)
    cols = getattr(topology, "cols", None)
    if not rows or not cols or rows * cols != topology.num_nodes:
        return []

    def build(R: int, C: int, at) -> list[int] | None:
        if R < 2 or C < 2 or R % 2:
            return None
        order = [at(r, 0) for r in range(R)]
        for r in range(R - 1, -1, -1):
            cells = range(1, C)
            if (R - 1 - r) % 2:
                cells = reversed(cells)
            order.extend(at(r, c) for c in cells)
        return order

    candidates = []
    for order in (
        build(rows, cols, lambda r, c: r * cols + c),
        build(cols, rows, lambda c, r: r * cols + c),
    ):
        if order is not None:
            candidates.append(order)
    return candidates


def _search_cycle(
    neighbors: list[set], budget: int
) -> list[int] | None:
    """Budgeted Warnsdorff backtracking for a Hamiltonian cycle."""
    n = len(neighbors)
    used = [False] * n
    used[0] = True
    path = [0]
    choice_stack: list[list[int]] = []

    def choices(node: int) -> list[int]:
        free = [peer for peer in neighbors[node] if not used[peer]]
        # Warnsdorff: most-constrained neighbour first; node id
        # breaks ties so the search is deterministic.
        free.sort(
            key=lambda peer: (
                sum(not used[q] for q in neighbors[peer]),
                peer,
            )
        )
        return free

    choice_stack.append(choices(0))
    steps = 0
    while choice_stack:
        steps += 1
        if steps > budget:
            return None
        options = choice_stack[-1]
        if not options:
            choice_stack.pop()
            used[path.pop()] = False
            continue
        nxt = options.pop(0)
        if len(path) == n - 1:
            if 0 in neighbors[nxt]:
                return path + [nxt]
            continue
        used[nxt] = True
        path.append(nxt)
        choice_stack.append(choices(nxt))
    return None


def drain_ring(topology, budget: int = 500_000) -> tuple[int, ...]:
    """A drain loop for *topology*: a Hamiltonian cycle, as a node
    order whose consecutive entries (wrapping) are all linked.

    Closed-form candidates — the identity order (rings, spidergons,
    circulants), the reflected Gray code (hypercubes) and grid
    serpentines (meshes/tori) — are validated against the topology's
    actual adjacency first, so a faulty or re-numbered variant just
    falls through to the generic budgeted backtracking search.

    Raises:
        DrainError: when no Hamiltonian cycle is found (some
            topologies have none, e.g. odd-by-odd meshes); construct
            the :class:`DrainController` with an explicit ``ring=``
            covering the critical routers instead.
    """
    n = topology.num_nodes
    if n < 2:
        raise DrainError(f"{topology.name}: need >= 2 nodes to drain")
    neighbors = [set(topology.neighbors(i)) for i in range(n)]
    candidates: list[list[int]] = [list(range(n))]
    gray = _gray_candidate(n)
    if gray is not None:
        candidates.append(gray)
    candidates.extend(_grid_candidates(topology))
    for order in candidates:
        if _is_cycle(order, neighbors):
            return tuple(order)
    found = _search_cycle(neighbors, budget)
    if found is not None:
        return tuple(found)
    raise DrainError(
        f"no drain ring (Hamiltonian cycle) found for {topology.name};"
        " pass an explicit ring= to DrainController"
    )


# -- the controller -----------------------------------------------------


class _DrainTick(Message):
    """Self-timer for detection checks and drain epochs."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name="drain-tick")


class DrainController(Observer):
    """Attach DRAIN-style deadlock recovery to *network*.

    Must be constructed after the network and before ``run()``; at
    most one controller per network.  The run's
    ``RunResult.extra["drain"]`` carries :meth:`summary`.

    Args:
        network: The network to guard.
        detect_cycles: Quiet window (no flit consumed, work
            outstanding) that arms drain mode.  Keep it well below
            the :class:`~repro.resilience.watchdog.StallWatchdog`
            threshold so recovery engages before truncation.
        spin_interval: Initial cycles between drain epochs once
            armed.
        min_interval / max_interval: Bounds for the DRANO-style
            adaptation: the interval halves while epochs fail to
            restart consumption and doubles once progress resumes.
        drain_all_vcs: Rotate every virtual channel (default) or
            only VC 0.
        watchdog_grace: How long a productive epoch shields the
            stall watchdog (default ``4 * max_interval``).
        ring: Explicit drain loop (overrides :func:`drain_ring`) —
            distinct, consecutively-linked node ids; need not cover
            every node, but only cycles it intersects can be broken.

    Attributes:
        stall_detections: Quiet windows that armed drain mode.
        epochs: Forced rotations executed.
        pulls / sends: Forced moves by kind (lane-to-queue /
            queue-to-lane), summed over epochs.
        recoveries: Armed episodes that ended with consumption
            observed after a drain epoch.
    """

    def __init__(
        self,
        network: Network,
        *,
        detect_cycles: int = 200,
        spin_interval: int = 64,
        min_interval: int = 8,
        max_interval: int = 512,
        drain_all_vcs: bool = True,
        watchdog_grace: int | None = None,
        ring: "tuple[int, ...] | list[int] | None" = None,
    ) -> None:
        if detect_cycles < 1:
            raise ValueError(
                f"detect_cycles must be >= 1, got {detect_cycles}"
            )
        if not 1 <= min_interval <= spin_interval <= max_interval:
            raise ValueError(
                "need 1 <= min_interval <= spin_interval <= "
                f"max_interval, got {min_interval}/{spin_interval}/"
                f"{max_interval}"
            )
        if network.drain_controller is not None:
            raise ValueError(
                "network already has a DrainController attached"
            )
        self.network = network
        self.detect_cycles = detect_cycles
        self.spin_interval = spin_interval
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.watchdog_grace = (
            watchdog_grace
            if watchdog_grace is not None
            else 4 * max_interval
        )
        self.ring = (
            tuple(ring) if ring is not None else drain_ring(
                network.topology
            )
        )
        self._vcs = tuple(
            range(network.num_vcs) if drain_all_vcs else (0,)
        )
        self._build_loop()
        self.interval = spin_interval
        self.stall_detections = 0
        self.epochs = 0
        self.pulls = 0
        self.sends = 0
        self.recoveries = 0
        self.last_epoch_cycle: int | None = None
        self._armed = False
        self._spun_this_episode = False
        self._progress_mark = -1
        self._shield_from: int | None = None
        network.drain_controller = self
        # Observer registration is what forces the batched engine to
        # fall back loudly to the classic event loop: forced moves
        # bypass its per-link record tables.  The hooks stay no-ops —
        # all work happens in self-rescheduling kernel timers.
        network.simulator.add_observer(self)
        self._schedule(network.simulator.now + detect_cycles)

    def _build_loop(self) -> None:
        """Resolve the ring into per-edge ports, lanes and gates."""
        topology = self.network.topology
        ring = self.ring
        if len(ring) < 2 or len(set(ring)) != len(ring):
            raise DrainError(
                f"drain ring must be distinct nodes, got {ring}"
            )
        self._out_ports: list[str] = []
        self._in_names: list[str] = []
        for k, node in enumerate(ring):
            nxt = ring[(k + 1) % len(ring)]
            try:
                self._out_ports.append(topology.port_to(node, nxt))
            except (KeyError, ValueError) as exc:
                raise DrainError(
                    f"drain ring edge {node}->{nxt} is not a link of "
                    f"{topology.name}: {exc}"
                ) from exc
            # _in_names[k] names the lane loop edge k feeds: input
            # "from{ring[k]}" at ring[k+1] (so the loop input lane
            # *at* ring[k] is _in_names[k - 1]).
            self._in_names.append(f"from{node}")
        # Arrival gate of each loop link, for the in-flight check
        # (a forced zero-delay send must not overtake flits still on
        # the real wire into the same lane).
        gate_of = {
            (src, port): gate
            for src, port, _, gate in (
                self.network.link_arrival_gates()
            )
        }
        self._edge_gates = [
            gate_of[(ring[k], self._out_ports[k])]
            for k in range(len(ring))
        ]

    # -- timers ---------------------------------------------------------

    def _schedule(self, time: int) -> None:
        simulator = self.network.simulator
        simulator.schedule(
            max(time, simulator.now),
            None,
            _DrainTick(),
            priority=0,
            handler=self._on_tick,
        )

    def _progress_counter(self) -> int:
        stats = self.network.stats
        return stats.flits_consumed + stats.warmup_flits_consumed

    def _work_outstanding(self) -> bool:
        net = self.network
        return any(
            router.total_buffered_flits() for router in net.routers
        ) or any(
            interface.backlog_packets for interface in net.interfaces
        )

    def _on_tick(self, message: Message) -> None:
        now = self.network.simulator.now
        progress = self._progress_counter()
        if not self._armed:
            stalled = (
                progress == self._progress_mark
                and self._work_outstanding()
            )
            self._progress_mark = progress
            if not stalled:
                self._schedule(now + self.detect_cycles)
                return
            # One full detection window with work parked and nothing
            # consumed: arm drain mode and spin immediately.
            self._armed = True
            self._spun_this_episode = False
            self._shield_from = now
            self.stall_detections += 1
        elif progress != self._progress_mark:
            # Consumption restarted after a drain epoch: recovery.
            # DRANO-style relaxation — spins were sufficient, so the
            # next episode may start with a longer interval.
            self.interval = min(self.interval * 2, self.max_interval)
            self.recoveries += 1
            self._armed = False
            self._shield_from = None
            self._progress_mark = progress
            self._schedule(now + self.detect_cycles)
            return
        elif self._spun_this_episode:
            # Still wedged after a full epoch interval: tighten.
            self.interval = max(
                self.interval // 2, self.min_interval
            )
        if not self._work_outstanding():
            self._armed = False
            self._shield_from = None
            self._schedule(now + self.detect_cycles)
            return
        moved = self._spin(now)
        self.epochs += 1
        self._spun_this_episode = True
        self.last_epoch_cycle = now
        if moved:
            self._shield_from = now
        self._progress_mark = self._progress_counter()
        self._schedule(now + self.interval)

    def shields_watchdog(self, now: int) -> bool:
        """Whether an active, productive drain episode should defer
        the stall watchdog (consulted, not commanded, by it)."""
        return (
            self._armed
            and self._shield_from is not None
            and now - self._shield_from <= self.watchdog_grace
        )

    # -- the forced rotation --------------------------------------------

    def _inflight_on_loop(self) -> dict[tuple[int, int], int]:
        """Flits still on the wire of loop edge *k*, per (k, vc)."""
        by_gate = {gate: k for k, gate in enumerate(self._edge_gates)}
        counts: dict[tuple[int, int], int] = {}
        for event in self.network.simulator.pending_events():
            if event.cancelled:
                continue
            message = event.message
            if not isinstance(message, FlitMessage):
                continue
            k = by_gate.get(message.arrival_gate)
            if k is not None:
                key = (k, message.wire_vc)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def _spin(self, now: int) -> int:
        """Execute one drain epoch; returns forced moves performed.

        Per VC, a rotation is planned as a fixpoint over the loop —
        ``send[k]`` forwards the loop queue head of ring node *k*
        into the loop lane of *k+1*; ``pull[k]`` advances one
        input-lane head at *k* into its planned queue — and then
        executed pops-first so every planned slot exists by the time
        it is filled.
        """
        net = self.network
        ring = self.ring
        M = len(ring)
        routers = [net.routers[node] for node in ring]
        inflight = self._inflight_on_loop()
        moved = 0
        for vc in self._vcs:
            send: list[bool] = []
            pull: list[tuple[str, int, str, int] | None] = []
            for k, router in enumerate(routers):
                out_port = self._out_ports[k]
                if out_port in router.dead_ports:
                    # Never resurrect a failed loop link.
                    send.append(False)
                else:
                    has_head, _, _ = router.drain_queue_info(
                        out_port, vc, now
                    )
                    send.append(has_head)
                pull.append(
                    router.drain_find_pull(
                        out_port,
                        vc,
                        self._in_names[k - 1],
                        send[k],
                        now,
                    )
                )

            def pops_loop_lane(k: int) -> bool:
                plan = pull[k]
                return plan is not None and plan[:2] == (
                    self._in_names[k - 1],
                    vc,
                )

            changed = True
            while changed:
                changed = False
                for k in range(M):
                    if not send[k]:
                        continue
                    nk = (k + 1) % M
                    room = routers[nk].drain_lane_room(
                        self._in_names[k], vc
                    ) + (1 if pops_loop_lane(nk) else 0)
                    if room < 1 or inflight.get((k, vc), 0):
                        # Withdrawing the send also withdraws the
                        # queue slot this node's pull may have been
                        # promised — re-plan it without the pop.
                        send[k] = False
                        pull[k] = routers[k].drain_find_pull(
                            self._out_ports[k],
                            vc,
                            self._in_names[k - 1],
                            False,
                            now,
                        )
                        changed = True
            popped: list[tuple[int, "object"]] = []
            for k in range(M):
                if send[k]:
                    popped.append(
                        (
                            k,
                            routers[k].drain_pop_for_send(
                                self._out_ports[k], vc
                            ),
                        )
                    )
            for k in range(M):
                plan = pull[k]
                if plan is not None:
                    input_name, wire_vc, out_port, out_vc = plan
                    flit = routers[k].drain_execute_pull(
                        input_name, wire_vc, out_port, out_vc, now
                    )
                    self.pulls += 1
                    moved += 1
                    net.notify_drain_move(
                        "pull", flit, ring[k], ring[k], vc
                    )
            for k, flit in popped:
                nk = (k + 1) % M
                routers[nk].drain_deliver(
                    self._in_names[k], vc, flit
                )
                self.sends += 1
                moved += 1
                net.notify_drain_move(
                    "send", flit, ring[k], ring[nk], vc
                )
        return moved

    # -- reporting ------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready recovery report for ``extra["drain"]``."""
        return {
            "ring_length": len(self.ring),
            "detect_cycles": self.detect_cycles,
            "stall_detections": self.stall_detections,
            "epochs": self.epochs,
            "flits_spun": self.pulls + self.sends,
            "pulls": self.pulls,
            "sends": self.sends,
            "recoveries": self.recoveries,
            "last_epoch_cycle": self.last_epoch_cycle,
            "interval": {
                "initial": self.spin_interval,
                "final": self.interval,
                "min": self.min_interval,
                "max": self.max_interval,
            },
        }
