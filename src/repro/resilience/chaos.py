"""Worker-side chaos hooks for exercising the crash-tolerant executor.

Real worker failures (OOM kills, wedged child processes, flaky model
bugs) are hard to produce on demand, so the executor's recovery paths
are driven by *injected* failures instead: when the ``REPRO_CHAOS``
environment variable is set, every sweep worker calls
:func:`apply_chaos` just before simulating a point and — if the point
matches — crashes, hangs, or raises on purpose.  The variable holds a
JSON object:

``match``
    Substring of the point descriptor (``"<topology>:<pattern>:<rate>"``)
    selecting which points misbehave.  Empty string matches all.
``mode``
    ``"crash"`` (``os._exit(42)``, which a process pool surfaces as
    :class:`~concurrent.futures.process.BrokenProcessPool`),
    ``"hang"`` (sleep, to trip per-point timeouts) or ``"error"``
    (raise ``RuntimeError``).
``seconds``
    Sleep length for ``"hang"`` (default 3600 — rely on the timeout).
``once_dir``
    Optional directory; when set, each matching point misbehaves only
    on its first attempt (a marker file records the strike), so
    retried points succeed — the happy recovery path.

The hook is a no-op when the variable is unset; production campaigns
never pay for it.  Used by the executor tests and the CI chaos smoke
step.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

ENV_VAR = "REPRO_CHAOS"


class ChaosError(RuntimeError):
    """The deliberate failure raised by ``mode: "error"``."""


def apply_chaos(descriptor: str) -> None:
    """Misbehave according to ``REPRO_CHAOS`` if *descriptor* matches.

    Args:
        descriptor: Human-readable point identity, e.g.
            ``"ring8:uniform:0.1"``.

    Raises:
        ChaosError: in ``"error"`` mode.
        ValueError: when the variable holds invalid JSON or an
            unknown mode — chaos configuration bugs should be loud.
    """
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    try:
        config = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid {ENV_VAR} JSON: {exc}") from exc
    match = config.get("match", "")
    if match not in descriptor:
        return
    mode = config.get("mode", "crash")
    if mode not in ("crash", "hang", "error"):
        raise ValueError(f"unknown {ENV_VAR} mode {mode!r}")
    once_dir = config.get("once_dir")
    if once_dir:
        digest = hashlib.sha256(
            f"{descriptor}:{mode}".encode()
        ).hexdigest()[:24]
        marker = os.path.join(once_dir, f"chaos-{digest}")
        try:
            # O_EXCL makes "first attempt only" atomic across
            # concurrent workers hitting the same point key.
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return  # already struck once; behave this time
    if mode == "crash":
        os._exit(42)
    if mode == "hang":
        time.sleep(float(config.get("seconds", 3600)))
        return
    raise ChaosError(f"injected failure for {descriptor}")
