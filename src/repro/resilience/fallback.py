"""Residual-graph routing for degraded networks.

When links fail mid-run the static routing algorithm keeps proposing
its usual output ports; a :class:`FallbackTable` supplies the detour:
shortest-path next hops computed by BFS over the *residual* topology
(the original graph minus every failed physical connection).

The table is rebuilt by :meth:`repro.noc.network.Network.fail_link` /
``repair_link`` on each fault transition, and consulted by routers
only when the primary decision points at a dead port — fault-free
traffic never pays for it.  Detours ignore the dateline VC discipline
(they run on VC 0), which is why runs with faults are reported as
degraded rather than silently merged with healthy measurements.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.topology.base import Topology


def normalise_link(pair: tuple[int, int]) -> tuple[int, int]:
    """Canonical (low, high) form of a physical connection.

    Failures sever both directed channels of a connection, so fault
    bookkeeping works on unordered node pairs.
    """
    a, b = pair
    return (a, b) if a <= b else (b, a)


class FallbackTable:
    """Next-hop table over the residual graph of a faulty network.

    Args:
        topology: The healthy topology.
        dead_links: Physical connections currently failed, as node
            pairs (either orientation).
    """

    def __init__(
        self, topology: Topology, dead_links: Iterable[tuple[int, int]]
    ) -> None:
        dead = {normalise_link(pair) for pair in dead_links}
        self.topology = topology
        self.dead_links = frozenset(dead)
        num_nodes = topology.num_nodes
        preds: list[list[tuple[int, str]]] = [
            [] for _ in range(num_nodes)
        ]
        for node in range(num_nodes):
            for port, peer in topology.out_ports(node).items():
                if normalise_link((node, peer)) not in dead:
                    preds[peer].append((node, port))
        # _next[node][dst] = first output port of a shortest residual
        # path node -> dst; absent key = unreachable.
        self._next: list[dict[int, str]] = [
            {} for _ in range(num_nodes)
        ]
        for dst in range(num_nodes):
            frontier = deque([dst])
            seen = {dst}
            while frontier:
                current = frontier.popleft()
                for pred, port in preds[current]:
                    if pred in seen:
                        continue
                    seen.add(pred)
                    self._next[pred][dst] = port
                    frontier.append(pred)

    def next_port(self, node: int, dst: int) -> str | None:
        """Output port of *node* toward *dst*, or None if *dst* is
        unreachable in the residual graph."""
        return self._next[node].get(dst)

    def reachable(self, node: int, dst: int) -> bool:
        return node == dst or dst in self._next[node]

    @property
    def fully_connected(self) -> bool:
        """True when every node still reaches every other node."""
        num_nodes = self.topology.num_nodes
        return all(
            len(self._next[node]) == num_nodes - 1
            for node in range(num_nodes)
        )
