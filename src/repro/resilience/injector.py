"""Executes a :class:`~repro.resilience.plan.FaultPlan` against a
running network.

The injector is an ordinary :class:`~repro.sim.module.SimModule`: at
``initialize()`` it schedules one self-timer per fault transition, at
priority 0 — the delivery priority — so a transition scheduled for
cycle *t* is applied before that cycle's advance/send phases (which
run at priorities 1 and 2).  Routers therefore never move a flit onto
a link in the cycle it dies.

Determinism: the plan is data and the timers are ordinary kernel
events, so a faulted run is exactly as replayable as a healthy one —
the serial/parallel equivalence tests cover faulted points too.
"""

from __future__ import annotations

from repro.noc.network import Network
from repro.resilience.plan import FaultEvent, FaultPlan
from repro.sim.messages import Message


class _FaultMessage(Message):
    """Self-timer carrying the transition to apply."""

    __slots__ = ("fault",)

    def __init__(self, fault: FaultEvent) -> None:
        super().__init__(name=f"fault-{fault.action}")
        self.fault = fault


class FaultInjector:
    """Applies *plan* to *network* at the scheduled cycles.

    Attributes:
        applied: Event records returned by
            :meth:`~repro.noc.network.Network.fail_link` /
            ``repair_link``, in application order — the run's fault
            log (also folded into the resilience report).
    """

    def __init__(self, network: Network, plan: FaultPlan) -> None:
        plan.validate_for(network.topology)
        self.network = network
        self.plan = plan
        self.applied: list[dict] = []
        for fault in plan.events:
            network.simulator.schedule(
                fault.time,
                None,
                _FaultMessage(fault),
                priority=0,
                handler=self._apply,
            )

    def _apply(self, message: Message) -> None:
        assert isinstance(message, _FaultMessage)
        fault = message.fault
        if fault.action == "fail":
            record = self.network.fail_link(fault.src, fault.dst)
        else:
            record = self.network.repair_link(fault.src, fault.dst)
        self.applied.append(record)
