"""First-order silicon cost models: area, wire length, energy.

The paper's conclusion rests on a trade-off — the Spidergon matches
more complex topologies "under most common assumptions" while keeping
"simple management, small energy and area requirements".  This
package quantifies the cost side of that trade-off with standard
first-order models:

* **router area** from buffering, crossbar and control complexity
  (:mod:`repro.cost.area`),
* **wire length** from an idealised floorplan per topology — mesh
  links are unit-length grid hops, ring links unit perimeter hops,
  Spidergon across links cross the die (:mod:`repro.cost.wires`),
* **dynamic energy** from per-link flit traversals weighted by wire
  length plus per-hop buffer/crossbar activity
  (:mod:`repro.cost.energy`).

Constants are expressed in normalised units (1.0 = cost of one
flit-width unit-length wire traversal / one flit-buffer / one
crossbar port); absolute calibration is process-dependent, relative
comparisons across topologies are the point.
"""

from repro.cost.area import RouterArea, network_area, router_area
from repro.cost.energy import EnergyModel, EnergyReport
from repro.cost.wires import link_length, total_wire_area, total_wire_length

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "RouterArea",
    "link_length",
    "network_area",
    "router_area",
    "total_wire_area",
    "total_wire_length",
]
