"""Router and network area estimation.

A first-order gate-count proxy in normalised units, following the
usual decomposition of an input-buffered wormhole router:

* **buffers** — dominant: one unit per flit of storage (input lanes
  plus output queues),
* **crossbar** — quadratic in port count: ``in_ports * out_ports``
  times a width factor,
* **control** — routing + VC allocation + arbitration: linear in
  ports and VCs.

The paper's qualitative points fall out directly: constant degree 3
makes every Spidergon router identical and cheap ("translating in
simple router HW and efficiency"), mesh routers vary between degree 2
and 4, and high-degree routers pay quadratically in the crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.config import NocConfig
from repro.topology.base import Topology

#: Area of one flit of buffer storage (normalisation unit).
BUFFER_UNIT = 1.0
#: Area per crossbar crosspoint (in_port x out_port pair).
CROSSBAR_UNIT = 0.5
#: Control logic per port (routing, arbitration).
CONTROL_PORT_UNIT = 0.25
#: Control logic per virtual channel per port (VC state, allocation).
CONTROL_VC_UNIT = 0.15


@dataclass(frozen=True, slots=True)
class RouterArea:
    """Area breakdown of one router, in normalised units."""

    node: int
    buffers: float
    crossbar: float
    control: float

    @property
    def total(self) -> float:
        return self.buffers + self.crossbar + self.control


def router_area(
    topology: Topology,
    node: int,
    config: NocConfig | None = None,
    num_vcs: int = 1,
) -> RouterArea:
    """Estimate the area of the router at *node*.

    Port counts include the local (NI) port, matching the built
    router: a degree-d node has d+1 input and d+1 output ports.
    """
    if num_vcs < 1:
        raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
    config = config if config is not None else NocConfig()
    ports = topology.degree(node) + 1  # + local port
    input_flits = ports * num_vcs * config.input_buffer_flits
    output_flits = ports * num_vcs * config.output_buffer_flits
    buffers = BUFFER_UNIT * (input_flits + output_flits)
    crossbar = CROSSBAR_UNIT * ports * ports
    control = (
        CONTROL_PORT_UNIT * 2 * ports
        + CONTROL_VC_UNIT * 2 * ports * num_vcs
    )
    return RouterArea(node, buffers, crossbar, control)


def network_area(
    topology: Topology,
    config: NocConfig | None = None,
    num_vcs: int = 1,
) -> float:
    """Total router area of the NoC (normalised units).

    Wire area is reported separately by
    :func:`repro.cost.wires.total_wire_length`.
    """
    return sum(
        router_area(topology, node, config, num_vcs).total
        for node in range(topology.num_nodes)
    )
