"""Wire-length model under idealised floorplans.

Lengths are in units of one grid/perimeter hop.  Assumptions, per
topology family:

* **Mesh / irregular mesh / torus** — nodes on a unit grid at their
  ``(row, col)`` cells; a link's length is the Manhattan distance
  between its endpoints.  Torus wrap links are folded: with the
  standard interleaved (folded-torus) layout every link, including
  wraps, spans two grid units.
* **Ring** — nodes on a ring laid out as a rectangle's perimeter;
  adjacent links have unit length.
* **Spidergon** — same perimeter layout for the external ring links;
  an **across** link crosses the die.  On a circle of circumference N
  the diameter is ``N / pi``; we use that as the across length, which
  is the standard first-order penalty for the Spidergon's long
  chords (real layouts fold the ring to shorten them; the relative
  conclusion — across links cost several unit hops — is robust).
"""

from __future__ import annotations

import math

from repro.topology.base import Link, Topology
from repro.topology.mesh import MeshTopology
from repro.topology.ring import RingTopology
from repro.topology.spidergon import ACROSS, SpidergonTopology
from repro.topology.torus import TorusTopology

#: Length of every link in a folded-torus layout.
FOLDED_TORUS_LINK_LENGTH = 2.0


def link_length(topology: Topology, link: Link) -> float:
    """Physical length of *link* under the topology's floorplan."""
    if isinstance(topology, SpidergonTopology):
        if link.port == ACROSS:
            return topology.num_nodes / math.pi
        return 1.0
    if isinstance(topology, RingTopology):
        return 1.0
    if isinstance(topology, TorusTopology):
        return FOLDED_TORUS_LINK_LENGTH
    if isinstance(topology, MeshTopology):
        src_row, src_col = topology.coordinates(link.src)
        dst_row, dst_col = topology.coordinates(link.dst)
        return float(
            abs(src_row - dst_row) + abs(src_col - dst_col)
        )
    # Unknown topology: fall back to unit links.
    return 1.0


def total_wire_length(topology: Topology) -> float:
    """Sum of all unidirectional link lengths (wire-area proxy)."""
    return sum(
        link_length(topology, link) for link in topology.links()
    )
