"""Wire-length model under idealised floorplans.

Lengths are in units of one grid/perimeter hop.  Assumptions, per
topology family:

* **Mesh / irregular mesh / torus** — nodes on a unit grid at their
  ``(row, col)`` cells; a link's length is the Manhattan distance
  between its endpoints.  Torus wrap links are folded: with the
  standard interleaved (folded-torus) layout every link, including
  wraps, spans two grid units.
* **Ring** — nodes on a ring laid out as a rectangle's perimeter;
  adjacent links have unit length.
* **Spidergon** — same perimeter layout for the external ring links;
  an **across** link crosses the die.  On a circle of circumference N
  the diameter is ``N / pi``; we use that as the across length, which
  is the standard first-order penalty for the Spidergon's long
  chords (real layouts fold the ring to shorten them; the relative
  conclusion — across links cost several unit hops — is robust).
* **Circulant C(N; 1, s)** — same circular layout: ring links have
  unit length and a chord of span ``s`` is a geometric chord of the
  circle, length ``(N / pi) * sin(pi * s / N)``.  Consistent with the
  Spidergon model (``s = N/2`` gives the diameter ``N / pi``) and the
  ring (``s -> 1`` approaches 1), so equal-cost comparisons across
  the whole family use one geometry.
* **3D mesh / torus** — each layer is a planar grid (mesh links unit
  length, torus links folded to 2.0 including the planar wraps); a
  vertical hop is a through-silicon via, far shorter than any planar
  wire (:data:`TSV_LINK_LENGTH`), and the z wrap of a 3D torus folds
  like the planar wraps (``2 * TSV_LINK_LENGTH``).  Wire *area*
  additionally weights each link by its width attribute
  (:func:`total_wire_area`), so narrow TSV bundles are cheaper than
  their count suggests.
"""

from __future__ import annotations

import math

from repro.topology.base import TSV, Link, Topology
from repro.topology.circulant import CirculantTopology
from repro.topology.mesh import MeshTopology
from repro.topology.mesh3d import Mesh3DTopology, Torus3DTopology
from repro.topology.ring import CLOCKWISE, COUNTERCLOCKWISE, RingTopology
from repro.topology.spidergon import ACROSS, SpidergonTopology
from repro.topology.torus import TorusTopology

#: Length of every link in a folded-torus layout.
FOLDED_TORUS_LINK_LENGTH = 2.0

#: Length of a vertical (TSV) hop between adjacent layers, in planar
#: grid-hop units.  Die-to-die spacing is tens of microns against a
#: planar hop of millimetres; 0.1 is a deliberately conservative
#: (pessimistic) round figure.
TSV_LINK_LENGTH = 0.1


def link_length(topology: Topology, link: Link) -> float:
    """Physical length of *link* under the topology's floorplan."""
    if isinstance(topology, Mesh3DTopology):
        if link.kind == TSV:
            return TSV_LINK_LENGTH
        return 1.0
    if isinstance(topology, Torus3DTopology):
        if link.kind == TSV:
            return 2 * TSV_LINK_LENGTH
        return FOLDED_TORUS_LINK_LENGTH
    if isinstance(topology, SpidergonTopology):
        if link.port == ACROSS:
            return topology.num_nodes / math.pi
        return 1.0
    if isinstance(topology, CirculantTopology):
        if link.port in (CLOCKWISE, COUNTERCLOCKWISE):
            return 1.0
        n = topology.num_nodes
        return (n / math.pi) * math.sin(math.pi * topology.skip / n)
    if isinstance(topology, RingTopology):
        return 1.0
    if isinstance(topology, TorusTopology):
        return FOLDED_TORUS_LINK_LENGTH
    if isinstance(topology, MeshTopology):
        src_row, src_col = topology.coordinates(link.src)
        dst_row, dst_col = topology.coordinates(link.dst)
        return float(
            abs(src_row - dst_row) + abs(src_col - dst_col)
        )
    # Unknown topology: fall back to unit links.
    return 1.0


def total_wire_length(topology: Topology) -> float:
    """Sum of all unidirectional link lengths (wire-area proxy)."""
    return sum(
        link_length(topology, link) for link in topology.links()
    )


def total_wire_area(topology: Topology) -> float:
    """Width-weighted wire length: ``sum(length * width)``.

    Equal to :func:`total_wire_length` on uniform topologies
    (``width == 1.0`` everywhere); differs when a topology narrows
    some channels, e.g. TSV bundles via ``tsv_width``.
    """
    return sum(
        link_length(topology, link) * link.width
        for link in topology.links()
    )
