"""Dynamic-energy accounting for a completed simulation run.

Standard bit-energy decomposition (Ye/Benini/De Micheli style): the
energy of moving one flit across one hop is a wire component
proportional to the link's length plus a fixed router component
(buffer write + read + crossbar traversal + a share of arbitration).
Per-link flit counts come from the routers' traffic counters, so the
report reflects exactly what the simulated workload did — including
the extra cost of the Spidergon's long across chords and the savings
from shorter average hop counts.

All constants are normalised: 1.0 = energy of one flit traversing one
unit-length wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.wires import link_length
from repro.routing.base import LOCAL_PORT

#: Energy per flit per unit wire length (normalisation unit).
WIRE_UNIT = 1.0
#: Fixed per-hop router energy: buffer write + read + crossbar.
ROUTER_HOP_UNIT = 1.2
#: Energy per routing decision (head flits only, approximated per
#: packet-hop as 1/packet_size of the flit traffic).
ROUTING_DECISION_UNIT = 0.3


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Tunable energy coefficients (normalised units)."""

    wire: float = WIRE_UNIT
    router_hop: float = ROUTER_HOP_UNIT
    routing_decision: float = ROUTING_DECISION_UNIT


@dataclass(slots=True)
class EnergyReport:
    """Energy totals for one run, in normalised units."""

    wire_energy: float
    router_energy: float
    routing_energy: float
    flits_delivered: int
    per_link: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.wire_energy + self.router_energy + self.routing_energy

    @property
    def energy_per_flit(self) -> float:
        """Total energy divided by delivered flits (0 if none)."""
        if self.flits_delivered == 0:
            return 0.0
        return self.total / self.flits_delivered

    @classmethod
    def from_network(
        cls, network, model: EnergyModel | None = None
    ) -> "EnergyReport":
        """Account the energy of a completed run of *network*.

        Raises:
            ValueError: if the network has not been run.
        """
        if network.cycles_run <= 0:
            raise ValueError("network has not been run yet")
        model = model if model is not None else EnergyModel()
        topology = network.topology
        links_by_key = {
            (link.src, link.port): link for link in topology.links()
        }
        wire_energy = 0.0
        router_energy = 0.0
        per_link = {}
        for (node, port), flits in network.link_flit_counts().items():
            if flits == 0:
                continue
            router_energy += model.router_hop * flits
            if port == LOCAL_PORT:
                continue  # ejection: router cost only, no long wire
            length = link_length(topology, links_by_key[(node, port)])
            energy = model.wire * length * flits
            wire_energy += energy
            per_link[(node, port)] = energy
        packet_size = network.config.packet_size_flits
        # One routing decision per head flit per router traversal.
        total_flit_hops = sum(
            flits
            for (node, port), flits in network.link_flit_counts().items()
            if port != LOCAL_PORT
        )
        routing_energy = (
            model.routing_decision * total_flit_hops / packet_size
        )
        delivered = (
            network.stats.flits_consumed
            + network.stats.warmup_flits_consumed
        )
        return cls(
            wire_energy=wire_energy,
            router_energy=router_energy,
            routing_energy=routing_energy,
            flits_delivered=delivered,
            per_link=per_link,
        )
