"""Flit-level wormhole NoC model (paper Section 3, figure 4).

The model follows the paper's node architecture:

* each IP connects to its router through a network interface
  (:class:`~repro.noc.interface.NetworkInterface`) that fragments
  packets into flits and reassembles/consumes them,
* packets are fixed-size (6 flits by default) and are forwarded with
  **wormhole switching**: the head flit is routed, body flits follow
  the switching state the head established,
* incoming links have a one-flit buffer; outgoing links have 3-flit
  output queues — a pair per link (two virtual channels, used for
  deadlock avoidance) on Ring and Spidergon, a single queue on Mesh,
* flow control is credit-based ("local signal-based"): a flit leaves a
  node only when the downstream input buffer has room; credits return
  within the cycle, so a one-flit input buffer sustains one
  flit/cycle/link.

:class:`~repro.noc.network.Network` assembles routers, interfaces and
links from a :class:`~repro.topology.Topology`, a routing algorithm
and a :class:`~repro.noc.config.NocConfig`.
"""

from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.packet import Flit, Packet
from repro.noc.router import Router
from repro.noc.interface import NetworkInterface

__all__ = [
    "Flit",
    "Network",
    "NetworkInterface",
    "NocConfig",
    "Packet",
    "Router",
]
