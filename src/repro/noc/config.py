"""NoC model configuration.

Defaults mirror the paper's simulation setup: 6-flit packets, one-flit
input buffers, three-flit output queues, unit link delay, and a
one-cycle router pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class NocConfig:
    """Static parameters of the flit-level model.

    Attributes:
        packet_size_flits: Flits per packet (paper: 6).
        input_buffer_flits: Capacity of each incoming-link buffer
            (paper: 1).
        output_buffer_flits: Capacity of each output queue
            (paper: 3).
        link_delay: Global link-latency multiplier (>= 1).  Every
            data link's traversal time is its topology-assigned
            latency (:meth:`~repro.topology.base.Topology.link_attrs`,
            1 for all paper topologies) times this factor — so on
            uniform topologies it behaves exactly as the historical
            "link traversal time in cycles".  Non-uniform timing
            belongs to the topology, not this knob.
        num_vcs: Output queues (virtual channels) per link; ``None``
            defers to the routing algorithm's requirement (2 for the
            dateline schemes on Ring/Spidergon, 1 for Mesh XY).
        source_queue_packets: IP memory capacity in packets; ``None``
            means unbounded.  When the queue is full, newly generated
            packets are dropped and counted as rejected (throughput
            measurements are unaffected; latency stays finite).
        router_pipeline: When True (default) a flit cannot be
            forwarded on a link in the same cycle it entered the
            output queue, modelling a one-cycle router traversal.
    """

    packet_size_flits: int = 6
    input_buffer_flits: int = 1
    output_buffer_flits: int = 3
    link_delay: int = 1
    num_vcs: int | None = None
    source_queue_packets: int | None = None
    router_pipeline: bool = True

    def __post_init__(self) -> None:
        if self.packet_size_flits < 1:
            raise ValueError(
                f"packet_size_flits must be >= 1, "
                f"got {self.packet_size_flits}"
            )
        if self.input_buffer_flits < 1:
            raise ValueError(
                f"input_buffer_flits must be >= 1, "
                f"got {self.input_buffer_flits}"
            )
        if self.output_buffer_flits < 1:
            raise ValueError(
                f"output_buffer_flits must be >= 1, "
                f"got {self.output_buffer_flits}"
            )
        if self.link_delay < 1:
            raise ValueError(
                f"link_delay must be >= 1, got {self.link_delay}"
            )
        if self.num_vcs is not None and self.num_vcs < 1:
            raise ValueError(
                f"num_vcs must be >= 1 or None, got {self.num_vcs}"
            )
        if (
            self.source_queue_packets is not None
            and self.source_queue_packets < 1
        ):
            raise ValueError(
                f"source_queue_packets must be >= 1 or None, "
                f"got {self.source_queue_packets}"
            )
