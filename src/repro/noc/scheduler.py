"""Two-phase cycle scheduler for the NoC agents.

Every cycle in which at least one agent has work, the scheduler runs
two global phases in strict order:

1. **advance** (event priority 1): routers move flits from input
   buffers into output queues and return credits (zero delay) to the
   upstream node;
2. **send** (event priority 2): routers and interfaces forward one
   flit per output port onto its link (delay >= 1), consuming the
   credits made visible by phase 1.

Running all advances before any send is what makes the zero-delay
credit return well defined: a credit freed anywhere in cycle *t* is
usable by its upstream sender in the same cycle, so a one-flit input
buffer sustains full link rate — the paper's "local signal-based flow
control".

Message deliveries (priority 0) always precede both phases of their
cycle, so flits and timer events arriving at *t* are visible to the
phases of *t*.

Idle agents cost nothing: an agent is ticked only while it reports
work pending, and any message delivery re-activates it.  This is an
optimisation over scheduling per-module self-message ticks (as a
plain OMNeT++ model would) — the semantics are identical, the heap
traffic is two events per cycle instead of two per module per cycle.
"""

from __future__ import annotations

from typing import Protocol

from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule

PRIORITY_DELIVER = 0
PRIORITY_ADVANCE = 1
PRIORITY_SEND = 2


class CycleAgent(Protocol):
    """What the scheduler requires of routers and interfaces."""

    def advance_phase(self) -> None: ...

    def send_phase(self) -> None: ...

    def has_pending_work(self) -> bool: ...


class _PhaseMessage(Message):
    __slots__ = ("phase",)

    def __init__(self, phase: str) -> None:
        super().__init__(name=f"phase-{phase}")
        self.phase = phase


class CycleScheduler(SimModule):
    """Drives the advance/send phases over the set of active agents."""

    def __init__(self, simulator: Simulator, name: str = "scheduler") -> None:
        super().__init__(simulator, name)
        self._agents: dict[CycleAgent, None] = {}
        self._tick_time: int | None = None
        self._advance_done_at = -1
        # One message object per phase for the scheduler's lifetime:
        # by the time a cycle re-arms, the previous cycle's events are
        # already delivered, so the two singletons are never aliased
        # by two pending events — and handle_message can dispatch on
        # identity instead of string comparison.
        self._advance_msg = _PhaseMessage("advance")
        self._send_msg = _PhaseMessage("send")
        # Batched fast path: called once per cycle after every agent's
        # send_phase, to flush the cycle's link traversals in one
        # batched update (None on the event engines).
        self.flush_hook = None

    def activate(self, agent: CycleAgent) -> None:
        """Ensure *agent* participates in the next cycle's phases.

        Safe to call at any point of a cycle: activations triggered by
        message deliveries (priority 0) or by zero-delay credits
        landing between the phases join the current cycle; anything
        later joins the next one.
        """
        self._agents[agent] = None
        if self._tick_time is not None:
            return
        if self._advance_done_at < self.now:
            tick_time = self.now
        else:
            tick_time = self.now + 1
        self._tick_time = tick_time
        self.simulator.schedule(
            tick_time,
            self,
            self._advance_msg,
            priority=PRIORITY_ADVANCE,
        )
        self.simulator.schedule(
            tick_time,
            self,
            self._send_msg,
            priority=PRIORITY_SEND,
        )

    def handle_message(self, message: Message) -> None:
        if message is self._advance_msg:
            self._advance_done_at = self.now
            for agent in self._agents:
                agent.advance_phase()
            return
        if message is not self._send_msg:
            raise TypeError(f"unexpected message {message!r}")
        # Send phase ends the cycle: run sends, drop idle agents, and
        # re-arm for the next cycle if anyone still has work.
        for agent in self._agents:
            agent.send_phase()
        hook = self.flush_hook
        if hook is not None:
            hook()
        self._tick_time = None
        idle = [
            agent
            for agent in self._agents
            if not agent.has_pending_work()
        ]
        for agent in idle:
            del self._agents[agent]
        if self._agents:
            self.activate(next(iter(self._agents)))

    @property
    def active_agents(self) -> int:
        """Number of agents currently being ticked."""
        return len(self._agents)
