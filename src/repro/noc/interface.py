"""The Network Interface (NI) connecting an IP to its router.

"The IPs are connected to a NoC switch by a Network Interface (NI)
incorporating the connection management and the data fragmentation
functions."  Per the paper's node model:

* the **source** side generates fixed-size packets with Poisson
  interarrivals, queues them in IP memory (FIFO; optionally bounded)
  and injects one flit per cycle into the router's local input port,
  subject to credit flow control;
* the **sink** side consumes arriving flits immediately, returning a
  zero-delay credit — consumption is therefore limited to one
  flit/cycle purely by the ejection link, which is exactly the
  destination bottleneck the hot-spot scenarios expose.

Flits are materialised lazily at injection time, so a saturated IP
memory holds compact packet objects rather than flits.
"""

from __future__ import annotations

import math
from collections import deque

from repro.noc.config import NocConfig
from repro.noc.packet import Flit, Packet
from repro.noc.signals import CreditMessage, FlitMessage
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.sim.rng import RngStream
from repro.stats.collectors import NetworkStats
from repro.traffic.base import TrafficSpec


class _GenerateMessage(Message):
    """Self-message timer marking the next packet generation."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name="generate")


class NetworkInterface(SimModule):
    """Source and sink for node *node*."""

    def __init__(
        self,
        simulator: Simulator,
        node: int,
        config: NocConfig,
        scheduler,
        stats: NetworkStats,
    ) -> None:
        super().__init__(simulator, f"ni{node}")
        self.node = node
        self.config = config
        self.scheduler = scheduler
        self.stats = stats
        self.data_out = self.add_gate("data_out")
        self.credit_in = self.add_gate("credit_in")
        self.data_in = self.add_gate("data_in")
        self.credit_out = self.add_gate("credit_out")
        self._credits = 0
        self._backlog: deque[Packet] = deque()
        self._peak_backlog = 0
        self._next_flit_index = 0
        self._traffic: TrafficSpec | None = None
        self._rng: RngStream | None = None
        self._generate_msg = _GenerateMessage()
        self._gen_clock = 0.0
        # Installed by the Network: per-flit drop accounting for
        # runtime link failures (None on a fault-free run).
        self.drop_sink = None
        # Batched fast path (all None on the event engines): the
        # injection-link flit sink, the reusable ejection-credit
        # records (per wire VC), and the current-cycle record channel.
        self.flit_sink = None
        self.credit_records = None
        self._fast_append = None

    # -- wiring ----------------------------------------------------------

    def set_injection_credits(self, credits: int) -> None:
        """Initial credit count for the router's local input buffer."""
        if credits < 1:
            raise ValueError(f"credits must be >= 1, got {credits}")
        self._credits = credits

    # -- traffic ----------------------------------------------------------

    def attach_traffic(self, traffic: TrafficSpec, rng: RngStream) -> None:
        """Make this NI a packet source for *traffic*."""
        self._traffic = traffic
        self._rng = rng

    def enqueue_packet(self, packet: Packet) -> None:
        """Queue *packet* for injection directly (trace-driven use).

        Bypasses the stochastic generator: callers replaying a traffic
        trace (or tests injecting a deterministic packet) create the
        packet themselves and hand it to the source side.  The IP
        memory bound still applies.

        Raises:
            ValueError: if the packet's source is not this node, or
                the IP memory is full.
        """
        if packet.src != self.node:
            raise ValueError(
                f"packet src {packet.src} does not match node "
                f"{self.node}"
            )
        limit = self.config.source_queue_packets
        if limit is not None and len(self._backlog) >= limit:
            raise ValueError(f"{self.name}: IP memory full")
        self._backlog.append(packet)
        if len(self._backlog) > self._peak_backlog:
            self._peak_backlog = len(self._backlog)
        self.scheduler.activate(self)

    def initialize(self) -> None:
        if self._traffic is not None and self._traffic.injection_rate > 0:
            self._schedule_next_generation()

    def _schedule_next_generation(self) -> None:
        assert self._traffic is not None and self._rng is not None
        mean = self._traffic.mean_interarrival(
            self.config.packet_size_flits
        )
        gap = self._traffic.process.next_interarrival(mean, self._rng)
        self._gen_clock += gap
        fire_at = max(self.now, math.ceil(self._gen_clock))
        self.schedule_self(fire_at - self.now, self._generate_msg)

    def _generate_packet(self) -> None:
        assert self._traffic is not None and self._rng is not None
        now = self.now
        dst = self._traffic.pattern.destination_for(self.node, self._rng)
        self.stats.record_generated(now)
        limit = self.config.source_queue_packets
        if limit is not None and len(self._backlog) >= limit:
            self.stats.record_rejected(now)
        else:
            packet = Packet(
                self.node,
                dst,
                self.config.packet_size_flits,
                created_at=now,
            )
            self._backlog.append(packet)
            if len(self._backlog) > self._peak_backlog:
                self._peak_backlog = len(self._backlog)
            self.scheduler.activate(self)
        self._schedule_next_generation()

    # -- message handling ----------------------------------------------

    def handle_message(self, message: Message) -> None:
        if isinstance(message, FlitMessage):
            self.receive_flit(message.flit)
            return
        if isinstance(message, CreditMessage):
            self.receive_credit()
            return
        if isinstance(message, _GenerateMessage):
            self._generate_packet()
            return
        raise TypeError(f"{self.name}: unexpected message {message!r}")

    def receive_flit(self, flit: Flit) -> None:
        """A flit arrived on the ejection link (wire or record)."""
        if flit.packet.killed:
            # A runtime fault killed the packet while this flit was
            # crossing the ejection link: return the credit and drop
            # instead of consuming a partial packet.
            records = self.credit_records
            if records is None:
                self.send(CreditMessage(flit.wire_vc), self.credit_out)
            else:
                self._fast_append(records[flit.wire_vc])
            if self.drop_sink is not None:
                self.drop_sink(flit)
            return
        self._consume(flit)

    def receive_credit(self) -> None:
        """The router freed one slot of its injection lane."""
        self._credits += 1
        if self._backlog:
            self.scheduler.activate(self)

    def _consume(self, flit: Flit) -> None:
        if flit.packet.dst != self.node:
            raise RuntimeError(
                f"{self.name}: misrouted flit of packet "
                f"{flit.packet.packet_id} bound for {flit.packet.dst}"
            )
        now = self.now
        records = self.credit_records
        if records is None:
            self.send(CreditMessage(flit.wire_vc), self.credit_out)
        else:
            self._fast_append(records[flit.wire_vc])
        self.stats.record_consumed_flit(now)
        if flit.is_tail:
            self.stats.record_packet_delivered(flit.packet, now)

    # -- cycle phases ------------------------------------------------------

    def advance_phase(self) -> None:
        """The NI has no internal pipeline stage."""

    def send_phase(self) -> None:
        """Inject at most one flit of the head-of-line packet."""
        while self._backlog and self._backlog[0].killed:
            # Killed mid-injection: abandon the rest of the packet.
            # Flits never injected are not counted as dropped —
            # conservation tracks injected flits only.
            self._backlog.popleft()
            self._next_flit_index = 0
        if not self._backlog or self._credits <= 0:
            return
        packet = self._backlog[0]
        flit = Flit(packet, self._next_flit_index)
        # All flits enter the network on wire VC 0; the source router
        # keys its switching state by the arrival VC, and packet.vc may
        # be promoted (dateline) between the head and body injections.
        flit.wire_vc = 0
        now = self.now
        if flit.is_head:
            packet.injected_at = now
        self._credits -= 1
        self.stats.record_injected_flit(now)
        sink = self.flit_sink
        if sink is None:
            self.send(FlitMessage(flit, flit.wire_vc), self.data_out)
        else:
            sink(flit, flit.wire_vc)
        if flit.is_tail:
            self._backlog.popleft()
            self._next_flit_index = 0
        else:
            self._next_flit_index += 1

    def has_pending_work(self) -> bool:
        return bool(self._backlog)

    # -- introspection ------------------------------------------------------

    @property
    def backlog_packets(self) -> int:
        """Packets waiting in IP memory (including the one injecting)."""
        return len(self._backlog)

    @property
    def peak_backlog(self) -> int:
        """Deepest the IP memory got so far (packets) — the source
        side congestion signal the trace summary reports."""
        return self._peak_backlog
