"""Network assembly: topology + routing + config -> runnable model.

:class:`Network` is the main entry point of the flit-level model::

    topology = SpidergonTopology(16)
    traffic = TrafficSpec(UniformTraffic(topology), injection_rate=0.2)
    network = Network(topology, traffic=traffic, seed=7)
    result = network.run(cycles=20_000, warmup=5_000)
    print(result.throughput, result.avg_latency)

Data links carry ``config.link_delay`` cycles of latency; credit links
are zero-delay (signal-based flow control).  The routing algorithm
defaults to the paper's scheme for the given topology
(:func:`repro.routing.routing_for`).
"""

from __future__ import annotations

from repro.noc.config import NocConfig
from repro.noc.interface import NetworkInterface
from repro.noc.router import Router
from repro.noc.scheduler import CycleScheduler
from repro.routing import RoutingAlgorithm, routing_for
from repro.routing.base import LOCAL_PORT
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStream
from repro.stats.collectors import NetworkStats
from repro.stats.summary import RunResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficSpec


class Network:
    """A fully wired NoC simulation instance (single use)."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm | None = None,
        config: NocConfig | None = None,
        traffic: TrafficSpec | None = None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else routing_for(
            topology
        )
        if self.routing.topology is not topology:
            raise ValueError(
                "routing algorithm was built for a different topology"
            )
        self.config = config if config is not None else NocConfig()
        self.traffic = traffic
        self.seed = seed
        self.num_vcs = (
            self.config.num_vcs
            if self.config.num_vcs is not None
            else self.routing.required_vcs
        )
        self.simulator = Simulator()
        self.scheduler = CycleScheduler(self.simulator)
        self.stats = NetworkStats()
        self.routers: list[Router] = []
        self.interfaces: list[NetworkInterface] = []
        self._source_nodes: list[int] = []
        self._build()
        self._ran = False
        self.cycles_run = 0

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        topology = self.topology
        config = self.config
        for node in range(topology.num_nodes):
            self.routers.append(
                Router(
                    self.simulator,
                    node,
                    self.routing,
                    config,
                    self.scheduler,
                    self.num_vcs,
                )
            )
            self.interfaces.append(
                NetworkInterface(
                    self.simulator,
                    node,
                    config,
                    self.scheduler,
                    self.stats,
                )
            )
        # Inter-router links: data forward, credit backward.
        for link in topology.links():
            src_router = self.routers[link.src]
            dst_router = self.routers[link.dst]
            in_name = f"from{link.src}"
            data_in, credit_out = dst_router.add_input_port(in_name)
            data_out, credit_in = src_router.add_output_port(
                link.port, config.input_buffer_flits
            )
            data_out.connect(data_in, delay=config.link_delay)
            credit_out.connect(credit_in, delay=0)
        # Local ports: router <-> NI, both directions.
        for node in range(topology.num_nodes):
            router = self.routers[node]
            ni = self.interfaces[node]
            # Injection: NI -> router.
            data_in, credit_out = router.add_input_port(LOCAL_PORT)
            ni.data_out.connect(data_in, delay=config.link_delay)
            credit_out.connect(ni.credit_in, delay=0)
            ni.set_injection_credits(config.input_buffer_flits)
            # Ejection: router -> NI (sink consumes instantly; its
            # logical buffer is one flit deep).
            data_out, credit_in = router.add_output_port(LOCAL_PORT, 1)
            data_out.connect(ni.data_in, delay=config.link_delay)
            ni.credit_out.connect(credit_in, delay=0)
        if self.traffic is not None:
            self._attach_traffic(self.traffic)

    def _attach_traffic(self, traffic: TrafficSpec) -> None:
        if traffic.pattern.topology is not self.topology:
            raise ValueError(
                "traffic pattern was built for a different topology"
            )
        self._source_nodes = traffic.pattern.sources()
        for node in self._source_nodes:
            rng = RngStream(self.seed, f"source{node}")
            self.interfaces[node].attach_traffic(traffic, rng)

    # -- execution ---------------------------------------------------------

    @property
    def num_sources(self) -> int:
        """Number of packet-generating nodes."""
        if self.traffic is None:
            return 0
        return len(self._source_nodes)

    def install_trace(self, trace) -> "object":
        """Attach a :class:`~repro.traffic.trace.Trace` for replay.

        May be combined with stochastic traffic (the trace adds to
        it) or used alone for fully deterministic workloads.  Must be
        called before :meth:`run`.

        Returns:
            The :class:`~repro.noc.trace_driver.TraceDriver`, whose
            ``packets_injected`` / ``packets_dropped`` counters are
            readable after the run.

        Raises:
            ValueError: if the trace references unknown nodes or the
                network already ran.
        """
        from repro.noc.trace_driver import TraceDriver

        if self._ran:
            raise ValueError("cannot install a trace after run()")
        trace.validate_for(self.topology)
        return TraceDriver(
            self.simulator,
            trace,
            self.interfaces,
            self.config.packet_size_flits,
        )

    def link_arrival_gates(
        self, include_local: bool = False
    ) -> list[tuple[int, str, int, "object"]]:
        """Every data link as ``(src, port, dst, arrival_gate)``.

        The arrival gate is the input :class:`~repro.sim.module.Gate`
        a :class:`~repro.noc.signals.FlitMessage` crossing the link is
        delivered to — the key kernel observers (:mod:`repro.obs`) use
        to attribute deliveries to links without instrumenting the
        routers themselves.  Ejection links (router -> NI, port
        ``"local"``) are included only when *include_local* is True.
        """
        links = []
        for router in self.routers:
            for port_name, data_gate in router.output_data_gates():
                if port_name == LOCAL_PORT and not include_local:
                    continue
                peer = data_gate.peer
                if peer is None:
                    continue
                links.append(
                    (router.node, port_name, peer.module.node, peer)
                )
        return links

    def link_flit_counts(self) -> dict[tuple[int, str], int]:
        """Flits forwarded per (node, output port) over the whole run.

        Includes the ejection port (``"local"``); injection flits are
        counted by the source NI, not here.  Divide by
        :attr:`cycles_run` for per-link utilization — a proxy for the
        per-link energy the paper's introduction lists among the on
        chip constraints.
        """
        counts = {}
        for router in self.routers:
            for port_name in router._outputs:
                counts[(router.node, port_name)] = router.flits_sent_on(
                    port_name
                )
        return counts

    def run(self, cycles: int, warmup: int = 0) -> RunResult:
        """Simulate *cycles* cycles; measure after *warmup* cycles.

        Raises:
            ValueError: on a non-positive horizon, a warmup that
                leaves no measurement window, or a second call (build
                a fresh Network per run).
        """
        if cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {cycles}")
        if not 0 <= warmup < cycles:
            raise ValueError(
                f"warmup must be in [0, cycles), got {warmup}"
            )
        if self._ran:
            raise ValueError(
                "Network.run is single-use; construct a new Network"
            )
        self._ran = True
        self.stats.warmup_cycles = warmup
        self.simulator.run(until=cycles)
        self.simulator.finalize()
        self.cycles_run = cycles
        return RunResult.from_stats(
            self.stats,
            events_processed=self.simulator.events_processed,
            topology_name=self.topology.name,
            routing_name=self.routing.name,
            pattern_name=(
                self.traffic.pattern.name if self.traffic else "none"
            ),
            num_nodes=self.topology.num_nodes,
            num_sources=self.num_sources,
            injection_rate=(
                self.traffic.injection_rate if self.traffic else 0.0
            ),
            cycles=cycles,
            seed=self.seed,
        )
