"""Network assembly: topology + routing + config -> runnable model.

:class:`Network` is the main entry point of the flit-level model::

    topology = SpidergonTopology(16)
    traffic = TrafficSpec(UniformTraffic(topology), injection_rate=0.2)
    network = Network(topology, traffic=traffic, seed=7)
    result = network.run(cycles=20_000, warmup=5_000)
    print(result.throughput, result.avg_latency)

Each data link carries the latency its topology assigns it
(:meth:`~repro.topology.base.Topology.link_attrs`, default one cycle)
multiplied by the global ``config.link_delay`` knob; credit links are
zero-delay (signal-based flow control).  The routing algorithm
defaults to the paper's scheme for the given topology
(:func:`repro.routing.routing_for`).
"""

from __future__ import annotations

import warnings
from collections import Counter

from repro.noc.config import NocConfig
from repro.noc.interface import NetworkInterface
from repro.noc.router import Router
from repro.noc.scheduler import CycleScheduler
from repro.routing import RoutingAlgorithm, routing_for
from repro.routing.base import LOCAL_PORT
from repro.sim.kernel import Simulator
from repro.sim.rng import RngStream
from repro.stats.collectors import NetworkStats
from repro.stats.summary import RunResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficSpec


class Network:
    """A fully wired NoC simulation instance (single use)."""

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm | None = None,
        config: NocConfig | None = None,
        traffic: TrafficSpec | None = None,
        seed: int = 0,
        engine=None,
        event_queue=None,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else routing_for(
            topology
        )
        if self.routing.topology is not topology:
            raise ValueError(
                "routing algorithm was built for a different topology"
            )
        self.config = config if config is not None else NocConfig()
        self.traffic = traffic
        self.seed = seed
        self.num_vcs = (
            self.config.num_vcs
            if self.config.num_vcs is not None
            else self.routing.required_vcs
        )
        # engine/event_queue are forwarded verbatim: the equivalence
        # tests run the same network on every engine and require
        # byte-identical results.
        self.simulator = Simulator(
            engine=engine, event_queue=event_queue
        )
        self.scheduler = CycleScheduler(self.simulator)
        self.stats = NetworkStats()
        self.routers: list[Router] = []
        self.interfaces: list[NetworkInterface] = []
        self._source_nodes: list[int] = []
        self._build()
        # Late-bind the routing algorithm to the built network:
        # adaptive schemes read live congestion through the routers
        # (a routing instance therefore serves one live network at a
        # time, like the dateline schemes' per-packet route state).
        self.routing.bind_network(self)
        #: The attached DrainController, if any (set by its ctor).
        self.drain_controller = None
        self._drain_listeners: list = []
        self._ran = False
        self.cycles_run = 0
        # Runtime-fault state (all empty on a healthy run).
        self._dead_links: set[tuple[int, int]] = set()
        self._fault_events: list[dict] = []
        self._flits_dropped_by_link: Counter[str] = Counter()
        self._packets_killed_by_link: Counter[str] = Counter()
        self._packets_rerouted = 0
        self._rerouted_packet_seen: set[int] = set()
        for router in self.routers:
            router.drop_sink = self._record_dropped_flit
            router.kill_sink = self._kill_unroutable
            router.reroute_sink = self._record_reroute
        for interface in self.interfaces:
            interface.drop_sink = self._record_dropped_flit
        # The model is fully wired: let the engine install any fast
        # paths (the batched engine builds its link tables here).
        self.simulator.engine.prepare_network(self)

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        topology = self.topology
        config = self.config
        if config.link_delay != 1 and not topology.is_uniform:
            # The global knob predates per-link attributes; scaling a
            # heterogeneous topology with it multiplies *every*
            # latency, which is rarely what a caller reaching for a
            # "slow links" effect wants any more.
            warnings.warn(
                "config.link_delay != 1 on a topology with "
                "heterogeneous link latencies: the global knob now "
                "acts as a multiplier on the per-link values; express "
                "non-uniform timing via Topology.link_attrs instead "
                "(see docs/timing_model.md)",
                DeprecationWarning,
                stacklevel=3,
            )
        for node in range(topology.num_nodes):
            self.routers.append(
                Router(
                    self.simulator,
                    node,
                    self.routing,
                    config,
                    self.scheduler,
                    self.num_vcs,
                )
            )
            self.interfaces.append(
                NetworkInterface(
                    self.simulator,
                    node,
                    config,
                    self.scheduler,
                    self.stats,
                )
            )
        # Inter-router links: data forward, credit backward.  Each
        # data link carries the latency its topology assigns it,
        # scaled by the global config.link_delay multiplier.
        for link in topology.links():
            src_router = self.routers[link.src]
            dst_router = self.routers[link.dst]
            in_name = f"from{link.src}"
            data_in, credit_out = dst_router.add_input_port(in_name)
            data_out, credit_in = src_router.add_output_port(
                link.port, config.input_buffer_flits
            )
            data_out.connect(
                data_in, delay=link.latency * config.link_delay
            )
            credit_out.connect(credit_in, delay=0)
        # Local ports: router <-> NI, both directions.
        for node in range(topology.num_nodes):
            router = self.routers[node]
            ni = self.interfaces[node]
            # Injection: NI -> router.
            data_in, credit_out = router.add_input_port(LOCAL_PORT)
            ni.data_out.connect(data_in, delay=config.link_delay)
            credit_out.connect(ni.credit_in, delay=0)
            ni.set_injection_credits(config.input_buffer_flits)
            # Ejection: router -> NI (sink consumes instantly; its
            # logical buffer is one flit deep).
            data_out, credit_in = router.add_output_port(LOCAL_PORT, 1)
            data_out.connect(ni.data_in, delay=config.link_delay)
            ni.credit_out.connect(credit_in, delay=0)
        if self.traffic is not None:
            self._attach_traffic(self.traffic)

    def _attach_traffic(self, traffic: TrafficSpec) -> None:
        if traffic.pattern.topology is not self.topology:
            raise ValueError(
                "traffic pattern was built for a different topology"
            )
        self._source_nodes = traffic.pattern.sources()
        for node in self._source_nodes:
            rng = RngStream(self.seed, f"source{node}")
            self.interfaces[node].attach_traffic(traffic, rng)

    # -- execution ---------------------------------------------------------

    @property
    def num_sources(self) -> int:
        """Number of packet-generating nodes."""
        if self.traffic is None:
            return 0
        return len(self._source_nodes)

    def install_trace(self, trace) -> "object":
        """Attach a :class:`~repro.traffic.trace.Trace` for replay.

        May be combined with stochastic traffic (the trace adds to
        it) or used alone for fully deterministic workloads.  Must be
        called before :meth:`run`.

        Returns:
            The :class:`~repro.noc.trace_driver.TraceDriver`, whose
            ``packets_injected`` / ``packets_dropped`` counters are
            readable after the run.

        Raises:
            ValueError: if the trace references unknown nodes or the
                network already ran.
        """
        from repro.noc.trace_driver import TraceDriver

        if self._ran:
            raise ValueError("cannot install a trace after run()")
        trace.validate_for(self.topology)
        return TraceDriver(
            self.simulator,
            trace,
            self.interfaces,
            self.config.packet_size_flits,
        )

    def link_arrival_gates(
        self, include_local: bool = False
    ) -> list[tuple[int, str, int, "object"]]:
        """Every data link as ``(src, port, dst, arrival_gate)``.

        The arrival gate is the input :class:`~repro.sim.module.Gate`
        a :class:`~repro.noc.signals.FlitMessage` crossing the link is
        delivered to — the key kernel observers (:mod:`repro.obs`) use
        to attribute deliveries to links without instrumenting the
        routers themselves.  Ejection links (router -> NI, port
        ``"local"``) are included only when *include_local* is True.
        """
        links = []
        for router in self.routers:
            for port_name, data_gate in router.output_data_gates():
                if port_name == LOCAL_PORT and not include_local:
                    continue
                peer = data_gate.peer
                if peer is None:
                    continue
                links.append(
                    (router.node, port_name, peer.module.node, peer)
                )
        return links

    def link_attrs_of(self, node: int, port_name: str):
        """The :class:`~repro.topology.base.LinkAttrs` of the data
        link leaving *node* via *port_name*.

        Injection/ejection links (port ``"local"``) are not topology
        links; they report ``kind="local"`` with the configured
        uniform delay, so observers can label every link they see.
        """
        from repro.topology.base import LinkAttrs

        if port_name == LOCAL_PORT:
            return LinkAttrs(latency=1, width=1.0, kind="local")
        return self.topology.link_attrs(node, port_name)

    def link_flit_counts(self) -> dict[tuple[int, str], int]:
        """Flits forwarded per (node, output port) over the whole run.

        Includes the ejection port (``"local"``); injection flits are
        counted by the source NI, not here.  Divide by
        :attr:`cycles_run` for per-link utilization — a proxy for the
        per-link energy the paper's introduction lists among the on
        chip constraints.
        """
        counts = {}
        for router in self.routers:
            for port_name in router._outputs:
                counts[(router.node, port_name)] = router.flits_sent_on(
                    port_name
                )
        return counts

    # -- runtime faults ----------------------------------------------------

    @property
    def dead_links(self) -> frozenset[tuple[int, int]]:
        """Physical connections currently failed, as (low, high) pairs."""
        return frozenset(self._dead_links)

    @staticmethod
    def _link_key(a: int, b: int) -> str:
        low, high = (a, b) if a <= b else (b, a)
        return f"{low}-{high}"

    def fail_link(self, a: int, b: int) -> dict:
        """Sever the physical connection between *a* and *b* (both
        directed channels), effective immediately.

        Packets with an established wormhole route through the dead
        link — or with flits already queued on it — cannot detour and
        are killed (purged everywhere, with drop accounting); packets
        that merely *planned* to use it re-decide and detour via the
        residual shortest-path table where one exists.  Flits already
        on the wire drain normally: a killed packet's flits are
        dropped on arrival with their credit returned, so flow-control
        bookkeeping stays exact.

        Returns:
            A JSON-ready event record (also kept in the resilience
            report).

        Raises:
            ValueError: if the nodes are not adjacent or the link is
                already failed.
        """
        from repro.resilience.fallback import (
            FallbackTable,
            normalise_link,
        )

        pair = normalise_link((a, b))
        if pair in self._dead_links:
            raise ValueError(f"link {pair} is already failed")
        port_ab = self.topology.port_to(a, b)  # raises if not adjacent
        port_ba = self.topology.port_to(b, a)
        self._dead_links.add(pair)
        self.routers[a].dead_ports.add(port_ab)
        self.routers[b].dead_ports.add(port_ba)
        self.routing.on_fault_update(self.dead_links)
        if self.routing.adaptive:
            # Adaptive routing re-decides around faults natively;
            # the BFS fallback table would be dead weight (see
            # install_legacy_fallback for the deprecated escape
            # hatch).  Installing None still wakes parked heads.
            self._install_fallback(None)
            residual_connected = bool(
                getattr(self.routing, "fully_connected", False)
            )
        else:
            fallback = FallbackTable(self.topology, self._dead_links)
            self._install_fallback(fallback)
            residual_connected = fallback.fully_connected
        victims: dict[int, "object"] = {}
        for packet in self.routers[a].invalidate_routes_via(port_ab):
            victims[packet.packet_id] = packet
        for packet in self.routers[b].invalidate_routes_via(port_ba):
            victims[packet.packet_id] = packet
        key = self._link_key(a, b)
        killed = dropped = 0
        for packet in victims.values():
            flits = self.kill_packet(packet, key)
            killed += 1
            dropped += flits
        record = {
            "time": self.simulator.now,
            "action": "fail",
            "link": key,
            "packets_killed": killed,
            "flits_dropped": dropped,
            "residual_connected": residual_connected,
        }
        self._fault_events.append(record)
        return record

    def repair_link(self, a: int, b: int) -> dict:
        """Restore a previously failed connection (transient faults).

        Raises:
            ValueError: if the link is not currently failed.
        """
        from repro.resilience.fallback import (
            FallbackTable,
            normalise_link,
        )

        pair = normalise_link((a, b))
        if pair not in self._dead_links:
            raise ValueError(f"link {pair} is not failed")
        self._dead_links.discard(pair)
        self.routers[a].dead_ports.discard(self.topology.port_to(a, b))
        self.routers[b].dead_ports.discard(self.topology.port_to(b, a))
        self.routing.on_fault_update(self.dead_links)
        if not self.routing.adaptive and self._dead_links:
            self._install_fallback(
                FallbackTable(self.topology, self._dead_links)
            )
        else:
            self._install_fallback(None)
        record = {
            "time": self.simulator.now,
            "action": "repair",
            "link": self._link_key(a, b),
        }
        self._fault_events.append(record)
        return record

    def install_legacy_fallback(self):
        """Build and install the BFS detour table for the current
        dead-link set — the pre-adaptive fault path.

        .. deprecated:: under adaptive routing.
            Adaptive algorithms (``routing.adaptive``) re-decide
            around dead ports natively and their reroute path never
            consults the table, so installing one is dead weight;
            calling this with adaptive routing active warns with
            :class:`DeprecationWarning` and installs it anyway (it
            then only documents residual connectivity).

        Returns:
            The installed
            :class:`~repro.resilience.fallback.FallbackTable`, or
            None when no link is failed.
        """
        from repro.resilience.fallback import FallbackTable

        if self.routing.adaptive:
            warnings.warn(
                "install_legacy_fallback() under adaptive routing is"
                " deprecated: adaptive algorithms detour natively"
                " and their reroute path ignores the BFS table",
                DeprecationWarning,
                stacklevel=2,
            )
        fallback = (
            FallbackTable(self.topology, self._dead_links)
            if self._dead_links
            else None
        )
        self._install_fallback(fallback)
        return fallback

    def _install_fallback(self, fallback) -> None:
        for router in self.routers:
            router.fallback = fallback
        # Wake anything holding flits so parked head flits re-decide
        # against the new table on the next cycle.
        for router in self.routers:
            if router.has_pending_work():
                self.scheduler.activate(router)
        for interface in self.interfaces:
            if interface.has_pending_work():
                self.scheduler.activate(interface)

    def kill_packet(self, packet, link_key: str) -> int:
        """Declare *packet* undeliverable because of *link_key*.

        Purges its flits from every router (returning lane credits)
        and marks it so flits still on the wire or at the source NI
        are dropped when they surface.  Idempotent per packet.

        Returns:
            Flits dropped right now (more may drain later).
        """
        if packet.killed:
            return 0
        packet.killed = True
        packet.route_state["killed_by"] = link_key
        self.stats.record_packet_killed(self.simulator.now)
        self._packets_killed_by_link[link_key] += 1
        dropped = 0
        for router in self.routers:
            dropped += router.purge_packet(packet)
        return dropped

    def _kill_unroutable(
        self, packet, node: int, port_name: str
    ) -> None:
        """Router callback: *node* found no residual route for
        *packet* whose primary decision used dead *port_name*."""
        peer = self.topology.out_ports(node).get(port_name)
        key = (
            self._link_key(node, peer)
            if peer is not None
            else f"{node}:{port_name}"
        )
        self.kill_packet(packet, key)

    def _record_dropped_flit(self, flit) -> None:
        self.stats.record_dropped_flit(self.simulator.now)
        link = flit.packet.route_state.get("killed_by")
        if link is not None:
            self._flits_dropped_by_link[link] += 1

    def _record_reroute(self, node: int, packet) -> None:
        if packet.packet_id not in self._rerouted_packet_seen:
            self._rerouted_packet_seen.add(packet.packet_id)
            self._packets_rerouted += 1

    # -- drain recovery ----------------------------------------------------

    def add_drain_listener(self, listener) -> None:
        """Register ``listener(kind, flit, src, dst, vc)`` for forced
        drain moves: ``kind`` is ``"pull"`` (lane to queue, src ==
        dst) or ``"send"`` (across the loop link src -> dst).  Used
        by the observability layer (flit traces, timelines) to keep
        recovery activity visible."""
        self._drain_listeners.append(listener)

    def notify_drain_move(
        self, kind: str, flit, src: int, dst: int, vc: int
    ) -> None:
        """Fan a forced drain move out to the registered listeners
        (called by the :class:`~repro.resilience.drain.DrainController`
        mid-epoch)."""
        for listener in self._drain_listeners:
            listener(kind, flit, src, dst, vc)

    @property
    def packets_rerouted(self) -> int:
        """Distinct packets that took at least one fallback detour."""
        return self._packets_rerouted

    def resilience_summary(self) -> dict:
        """JSON-ready report of the run's fault activity."""
        return {
            "fault_events": list(self._fault_events),
            "dead_links": sorted(
                self._link_key(a, b) for a, b in self._dead_links
            ),
            "flits_dropped": self.stats.flits_dropped,
            "packets_killed": self.stats.packets_killed,
            "packets_rerouted": self._packets_rerouted,
            "flits_dropped_by_link": dict(
                sorted(self._flits_dropped_by_link.items())
            ),
            "packets_killed_by_link": dict(
                sorted(self._packets_killed_by_link.items())
            ),
        }

    def run(self, cycles: int, warmup: int = 0) -> RunResult:
        """Simulate *cycles* cycles; measure after *warmup* cycles.

        Raises:
            ValueError: on a non-positive horizon, a warmup that
                leaves no measurement window, or a second call (build
                a fresh Network per run).
        """
        if cycles <= 0:
            raise ValueError(f"cycles must be > 0, got {cycles}")
        if not 0 <= warmup < cycles:
            raise ValueError(
                f"warmup must be in [0, cycles), got {warmup}"
            )
        if self._ran:
            raise ValueError(
                "Network.run is single-use; construct a new Network"
            )
        self._ran = True
        self.stats.warmup_cycles = warmup
        self.simulator.run(until=cycles)
        self.simulator.finalize()
        stopped_early = self.simulator.stop_requested
        self.cycles_run = (
            self.simulator.now if stopped_early else cycles
        )
        result = RunResult.from_stats(
            self.stats,
            events_processed=self.simulator.events_processed,
            topology_name=self.topology.name,
            routing_name=self.routing.name,
            pattern_name=(
                self.traffic.pattern.name if self.traffic else "none"
            ),
            num_nodes=self.topology.num_nodes,
            num_sources=self.num_sources,
            injection_rate=(
                self.traffic.injection_rate if self.traffic else 0.0
            ),
            # A degraded run's metrics cover the truncated horizon
            # (clamped so a trip inside warmup still leaves a
            # measurement window for the throughput division).
            cycles=max(self.cycles_run, warmup + 1),
            seed=self.seed,
        )
        if self._fault_events or self.stats.flits_dropped:
            result.extra["resilience"] = self.resilience_summary()
        if self.drain_controller is not None:
            result.extra["drain"] = self.drain_controller.summary()
        if stopped_early:
            result.degraded = True
            details = self.simulator.stop_details or {}
            result.extra["stall"] = {
                "reason": self.simulator.stop_reason,
                **details,
            }
        return result
