"""Flit buffers: bounded FIFOs, output queues with wormhole ownership,
and per-input-port switching state."""

from __future__ import annotations

from collections import deque

from repro.noc.packet import Flit, Packet


class BufferError(RuntimeError):
    """Raised on buffer misuse (overflow, underflow) — these indicate
    a flow-control bug, never a legal simulation state."""


class FlitFifo:
    """A bounded FIFO of flits.

    Tracks its high-water mark (:attr:`peak`) — the occupancy
    evidence buffer-sizing analyses and the observability layer's
    congestion diagnostics read after a run.
    """

    __slots__ = ("capacity", "_flits", "peak")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.peak = 0
        self._flits: deque[Flit] = deque()

    def __len__(self) -> int:
        return len(self._flits)

    @property
    def is_full(self) -> bool:
        return len(self._flits) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._flits

    def head(self) -> Flit | None:
        """The next flit to leave, or None when empty."""
        return self._flits[0] if self._flits else None

    def push(self, flit: Flit) -> None:
        if self.is_full:
            raise BufferError(
                f"push into full buffer (capacity {self.capacity}) — "
                "flow control violated"
            )
        self._flits.append(flit)
        if len(self._flits) > self.peak:
            self.peak = len(self._flits)

    def pop(self) -> Flit:
        if not self._flits:
            raise BufferError("pop from empty buffer")
        return self._flits.popleft()

    def flits(self) -> tuple[Flit, ...]:
        """Snapshot of the buffered flits, head first (read-only)."""
        return tuple(self._flits)

    def remove_packet(self, packet: Packet) -> list[Flit]:
        """Remove every flit of *packet*, preserving the order of the
        rest; returns the removed flits.

        Fault handling only — normal operation never removes flits
        out of FIFO order.  The high-water mark is not rewound.
        """
        removed = [f for f in self._flits if f.packet is packet]
        if removed:
            # Mutate in place rather than rebinding: the batched
            # engine's fast path holds direct references to this
            # deque, which must stay valid across fault handling.
            kept = [f for f in self._flits if f.packet is not packet]
            self._flits.clear()
            self._flits.extend(kept)
        return removed


class OutputQueue(FlitFifo):
    """One virtual-channel output queue of a router port.

    Wormhole discipline: while a packet's flits are being enqueued the
    queue is *owned* by that packet and no other packet's head flit
    may enter; ownership is released when the tail flit is enqueued
    (the queue itself is FIFO, so flits of successive packets never
    interleave inside it or on the wire of this VC).
    """

    __slots__ = ("port", "vc", "owner", "last_enqueue_cycle", "rr_grant")

    def __init__(self, port: str, vc: int, capacity: int) -> None:
        super().__init__(capacity)
        self.port = port
        self.vc = vc
        self.owner: Packet | None = None
        self.last_enqueue_cycle = -1
        # Rotating grant priority over the router's input-port
        # indices: the input after the last ownership winner gets
        # first claim on this queue (fair separable allocation).
        self.rr_grant = 0

    def can_accept(self, flit: Flit, now: int) -> bool:
        """Whether *flit* may be enqueued this cycle.

        Requires a free slot, at most one enqueue per cycle (the
        crossbar writes each queue once per cycle), and — for head
        flits — that no other packet owns the queue.
        """
        if self.is_full or self.last_enqueue_cycle == now:
            return False
        if flit.is_head:
            return self.owner is None
        return self.owner is flit.packet

    def enqueue(self, flit: Flit, now: int) -> None:
        """Admit *flit*, updating ownership and the cycle stamp.

        Raises:
            BufferError: if :meth:`can_accept` would have refused.
        """
        if not self.can_accept(flit, now):
            raise BufferError(
                f"illegal enqueue on {self.port}/vc{self.vc} at {now}"
            )
        if flit.is_head:
            self.owner = flit.packet
        flit.enqueued_at = now
        self.push(flit)
        self.last_enqueue_cycle = now
        if flit.is_tail:
            self.owner = None


class SwitchingState:
    """Per-(input port, wire VC) wormhole switching state.

    Set when a head flit is routed; body flits of the same packet
    follow it; cleared when the tail flit passes.
    """

    __slots__ = ("_state",)

    def __init__(self) -> None:
        self._state: dict[int, tuple[Packet, str, int]] = {}

    def set_route(
        self, wire_vc: int, packet: Packet, port: str, vc: int
    ) -> None:
        if wire_vc in self._state:
            raise BufferError(
                f"wire VC {wire_vc} already carries packet "
                f"{self._state[wire_vc][0].packet_id}"
            )
        self._state[wire_vc] = (packet, port, vc)

    def route_of(self, wire_vc: int, packet: Packet) -> tuple[str, int]:
        """Output (port, vc) the head flit of *packet* established.

        Raises:
            BufferError: if no state exists or it belongs to another
                packet — either means flits interleaved illegally.
        """
        entry = self._state.get(wire_vc)
        if entry is None or entry[0] is not packet:
            raise BufferError(
                f"no switching state for packet {packet.packet_id} on "
                f"wire VC {wire_vc}"
            )
        return entry[1], entry[2]

    def clear(self, wire_vc: int) -> None:
        self._state.pop(wire_vc, None)

    def has_route(self, wire_vc: int) -> bool:
        return wire_vc in self._state

    def packets_via(self, port: str) -> list[Packet]:
        """Packets whose established route uses output *port*."""
        return [
            entry[0]
            for entry in self._state.values()
            if entry[1] == port
        ]

    def clear_packet(self, packet: Packet) -> None:
        """Drop any entry belonging to *packet* (fault handling)."""
        stale = [
            wire_vc
            for wire_vc, entry in self._state.items()
            if entry[0] is packet
        ]
        for wire_vc in stale:
            del self._state[wire_vc]
