"""The wormhole router (paper figure 4, minus the IP-side interface).

Per node the router owns:

* per incoming link, one **input lane** per virtual channel (each one
  flit deep by default — the paper's "one-flit buffer" per incoming
  link, provisioned per VC so the dateline deadlock-avoidance
  discipline is sound; see below),
* per outgoing link, ``num_vcs`` **output queues** (three flits deep
  by default — a pair per link on Ring and Spidergon, "used both for
  virtual channel management and deadlock avoidance", a single queue
  on Mesh),
* an output port toward the local network interface (ejection) and an
  input port from it (injection), treated exactly like link ports.

Behaviour per cycle (driven by the
:class:`~repro.noc.scheduler.CycleScheduler`):

* **advance phase** — for each input port, examine the head flits of
  its lanes (round-robin).  Head flits ask the routing algorithm for
  an output (port, VC) and must win the queue's wormhole ownership;
  body flits follow the switching state their head established.  An
  admitted flit moves to the output queue and a per-VC credit returns
  upstream with zero delay.  At most one flit advances per input port
  per cycle (the crossbar input bandwidth).
* **send phase** — for each output port, pick one output queue
  round-robin among those whose head flit is ready (enqueued in an
  earlier cycle, when the one-cycle pipeline is on) and whose VC has
  downstream credit, and forward the flit on the link.

Both phases move at most one flit per port per cycle, which bounds
every physical link — including the ejection link, whose one
flit/cycle ceiling is the hot-spot bottleneck the paper measures.

Why per-VC input lanes: with a single shared one-flit input buffer, a
VC0 flit blocked in the buffer stalls VC1 flits arriving on the same
link, so VC1 channels inherit VC0 dependencies and the ring's channel
dependency cycle closes despite the dateline (observed as a hard
deadlock under uniform traffic).  Splitting the input stage per VC is
the textbook virtual-channel router organisation and restores the
acyclicity argument: VC1 resources never wait on VC0 resources.
"""

from __future__ import annotations

from repro.noc.buffers import FlitFifo, OutputQueue, SwitchingState
from repro.noc.config import NocConfig
from repro.noc.signals import CreditMessage, FlitMessage
from repro.routing.base import LOCAL_PORT, RoutingAlgorithm
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import Gate, SimModule


class _InputPort:
    """State of one incoming link: per-VC lanes + switching state."""

    __slots__ = (
        "name",
        "lanes",
        "switching",
        "credit_gate",
        "credit_records",
        "rr_next_lane",
        "pending",
    )

    def __init__(
        self,
        name: str,
        num_lanes: int,
        lane_capacity: int,
        credit_gate: Gate,
    ) -> None:
        self.name = name
        self.lanes = [FlitFifo(lane_capacity) for _ in range(num_lanes)]
        self.switching = SwitchingState()
        self.credit_gate = credit_gate
        # Batched fast path: per-VC reusable credit records replacing
        # CreditMessage sends (None on the event engines).
        self.credit_records = None
        self.rr_next_lane = 0
        # Routing decision taken for a head flit that has not yet won
        # its output queue (one per lane); routing algorithms are
        # consulted exactly once per packet per router.
        self.pending: dict[int, tuple[str, int]] = {}

    def occupancy(self) -> int:
        return sum(len(lane) for lane in self.lanes)


class _OutputPort:
    """State of one outgoing link: VC queues + per-VC credits."""

    __slots__ = (
        "name",
        "queues",
        "credits",
        "data_gate",
        "flit_sink",
        "rr_next_vc",
        "flits_sent",
        "flits_sent_by_vc",
    )

    def __init__(
        self,
        name: str,
        num_vcs: int,
        queue_capacity: int,
        downstream_capacity: int,
        data_gate: Gate,
    ) -> None:
        self.name = name
        self.queues = [
            OutputQueue(name, vc, queue_capacity) for vc in range(num_vcs)
        ]
        self.credits = [downstream_capacity] * num_vcs
        self.data_gate = data_gate
        # Batched fast path: callable replacing the FlitMessage send
        # (None on the event engines).
        self.flit_sink = None
        self.rr_next_vc = 0
        self.flits_sent = 0
        self.flits_sent_by_vc = [0] * num_vcs

    def occupancy(self) -> int:
        return sum(len(queue) for queue in self.queues)


class Router(SimModule):
    """One NoC switch, attached to node *node* of the topology."""

    def __init__(
        self,
        simulator: Simulator,
        node: int,
        routing: RoutingAlgorithm,
        config: NocConfig,
        scheduler,
        num_vcs: int,
    ) -> None:
        super().__init__(simulator, f"router{node}")
        self.node = node
        self.routing = routing
        self.config = config
        self.scheduler = scheduler
        self.num_vcs = num_vcs
        # Batched fast path: files a record into the current cycle
        # (the zero-delay credit channel); None on the event engines.
        self._fast_append = None
        # Runtime-fault state, managed by the owning Network: output
        # ports currently severed by a link failure, the residual
        # routing table that detours around them, and the callbacks
        # (drop accounting, network-wide packet kill, reroute tally)
        # the network installs after construction.
        self.dead_ports: set[str] = set()
        self.fallback = None
        self.drop_sink = None
        self.kill_sink = None
        self.reroute_sink = None
        # Drain-epoch bookkeeping: forced moves executed on this
        # router by the DrainController (see repro.resilience.drain).
        self.drain_moves = 0
        self._inputs: dict[str, _InputPort] = {}
        self._outputs: dict[str, _OutputPort] = {}
        self._input_order: list[_InputPort] = []
        self._output_order: list[_OutputPort] = []
        self._input_of_gate: dict[Gate, _InputPort] = {}
        self._output_of_gate: dict[Gate, _OutputPort] = {}

    # -- wiring (done by the Network builder) --------------------------

    def add_input_port(self, name: str) -> tuple[Gate, Gate]:
        """Create an input port; returns (data-in gate, credit-out gate)."""
        data_gate = self.add_gate(f"data_in:{name}")
        credit_gate = self.add_gate(f"credit_out:{name}")
        port = _InputPort(
            name,
            self.num_vcs,
            self.config.input_buffer_flits,
            credit_gate,
        )
        self._inputs[name] = port
        self._input_order.append(port)
        self._input_of_gate[data_gate] = port
        return data_gate, credit_gate

    def add_output_port(
        self, name: str, downstream_capacity: int
    ) -> tuple[Gate, Gate]:
        """Create an output port; returns (data-out gate, credit-in gate)."""
        data_gate = self.add_gate(f"data_out:{name}")
        credit_gate = self.add_gate(f"credit_in:{name}")
        port = _OutputPort(
            name,
            self.num_vcs,
            self.config.output_buffer_flits,
            downstream_capacity,
            data_gate,
        )
        self._outputs[name] = port
        self._output_order.append(port)
        self._output_of_gate[credit_gate] = port
        return data_gate, credit_gate

    # -- message handling ----------------------------------------------

    def handle_message(self, message: Message) -> None:
        if isinstance(message, FlitMessage):
            self.receive_flit(
                self._input_of_gate[message.arrival_gate],
                message.wire_vc,
                message.flit,
            )
            return
        if isinstance(message, CreditMessage):
            self.receive_credit(
                self._output_of_gate[message.arrival_gate], message.vc
            )
            return
        raise TypeError(f"{self.name}: unexpected message {message!r}")

    def receive_flit(self, port: _InputPort, wire_vc: int, flit) -> None:
        """A flit arrived on input *port* (wire or batched record)."""
        if flit.packet.killed:
            # The packet was declared undeliverable while this flit
            # was on the wire: drop it on arrival, returning the
            # credit so upstream bookkeeping stays exact.
            records = port.credit_records
            if records is None:
                self.send(CreditMessage(wire_vc), port.credit_gate)
            else:
                self._fast_append(records[wire_vc])
            if self.drop_sink is not None:
                self.drop_sink(flit)
            return
        port.lanes[wire_vc].push(flit)
        self.scheduler.activate(self)

    def receive_credit(self, port: _OutputPort, vc: int) -> None:
        """A downstream credit returned for output *port*."""
        port.credits[vc] += 1
        self.scheduler.activate(self)

    # -- cycle phases ----------------------------------------------------

    def advance_phase(self) -> None:
        """Move up to one flit per input port into its output queue.

        Separable two-step allocation:

        1. every input port nominates one candidate flit (first lane
           in its round-robin order whose flit could move this
           cycle);
        2. body flits move directly (their queue is owned by their
           packet, so no two candidates collide); head flits
           *claiming* a free queue are arbitrated per queue with a
           rotating grant priority stored on the queue itself.

        Per-queue grant rotation matters: any router-global pointer
        resonates when its period divides the packet length (e.g. 3
        ports x 6-flit packets) and then one input captures an output
        queue forever, starving the local source — observed as zero
        delivered packets from distance-1 nodes under hot-spot load.
        """
        now = self.now
        claims: dict = {}
        for index, port in enumerate(self._input_order):
            candidate = self._candidate(port, now)
            if candidate is None:
                continue
            wire_vc, flit, queue = candidate
            if flit.is_head and queue.owner is None:
                claims.setdefault(queue, []).append(
                    (index, port, wire_vc, flit)
                )
            else:
                self._execute_move(port, wire_vc, flit, queue, now)
        num_inputs = len(self._input_order)
        for queue, requests in claims.items():
            winner = min(
                requests,
                key=lambda req: (req[0] - queue.rr_grant) % num_inputs,
            )
            index, port, wire_vc, flit = winner
            queue.rr_grant = (index + 1) % num_inputs
            del port.pending[wire_vc]
            port.switching.set_route(
                wire_vc, flit.packet, queue.port, queue.vc
            )
            self._execute_move(port, wire_vc, flit, queue, now)

    def _candidate(
        self, port: _InputPort, now: int
    ) -> tuple[int, "object", "object"] | None:
        """The port's movable flit this cycle: (wire_vc, flit, queue)."""
        lanes = port.lanes
        lane_count = len(lanes)
        lane_start = port.rr_next_lane % lane_count
        for lane_offset in range(lane_count):
            wire_vc = (lane_start + lane_offset) % lane_count
            flit = lanes[wire_vc].head()
            if flit is None:
                continue
            if flit.is_head and not port.switching.has_route(wire_vc):
                pending = port.pending.get(wire_vc)
                if pending is None:
                    # Routing algorithms are consulted exactly once
                    # per packet per router; a decision that cannot
                    # be realised yet (queue busy) is parked and
                    # retried.
                    decision = self.routing.decide(
                        self.node, flit.packet
                    )
                    # When the network has fewer VCs than the routing
                    # discipline asks for (the 1-VC ablation),
                    # packets are forced onto the highest available
                    # queue — deliberately losing the dateline's
                    # deadlock guarantee.
                    pending = (
                        decision.port,
                        min(decision.vc, self.num_vcs - 1),
                    )
                    if pending[0] in self.dead_ports:
                        pending = self._reroute(flit.packet)
                        if pending is None:
                            # No residual path: declare the packet
                            # undeliverable (the network purges its
                            # flits everywhere) and look at the next
                            # lane.
                            assert self.kill_sink is not None
                            self.kill_sink(
                                flit.packet, self.node, decision.port
                            )
                            continue
                    port.pending[wire_vc] = pending
                out_port, out_vc = pending
                queue = self._outputs[out_port].queues[out_vc]
                if not queue.can_accept(flit, now):
                    continue
                return wire_vc, flit, queue
            out_port, out_vc = port.switching.route_of(
                wire_vc, flit.packet
            )
            queue = self._outputs[out_port].queues[out_vc]
            if not queue.can_accept(flit, now):
                continue
            return wire_vc, flit, queue
        return None

    def _execute_move(
        self, port: _InputPort, wire_vc: int, flit, queue, now: int
    ) -> None:
        """Dequeue from the lane, enqueue into *queue*, return credit."""
        port.lanes[wire_vc].pop()
        queue.enqueue(flit, now)
        if flit.is_tail:
            port.switching.clear(wire_vc)
        port.rr_next_lane = (wire_vc + 1) % len(port.lanes)
        records = port.credit_records
        if records is None:
            self.send(CreditMessage(wire_vc), port.credit_gate)
        else:
            self._fast_append(records[wire_vc])

    def send_phase(self) -> None:
        """Forward up to one ready flit per output port."""
        now = self.now
        pipeline = self.config.router_pipeline
        for port in self._output_order:
            if port.name in self.dead_ports:
                continue
            queues = port.queues
            count = len(queues)
            start = port.rr_next_vc % count
            for offset in range(count):
                queue = queues[(start + offset) % count]
                if port.credits[queue.vc] <= 0:
                    continue
                flit = queue.head()
                if flit is None:
                    continue
                if pipeline and flit.enqueued_at == now:
                    continue
                queue.pop()
                port.credits[queue.vc] -= 1
                port.rr_next_vc = (queue.vc + 1) % count
                port.flits_sent += 1
                port.flits_sent_by_vc[queue.vc] += 1
                if flit.is_head and port.name != LOCAL_PORT:
                    flit.packet.hops += 1
                flit.wire_vc = queue.vc
                sink = port.flit_sink
                if sink is None:
                    self.send(
                        FlitMessage(flit, queue.vc), port.data_gate
                    )
                else:
                    sink(flit, queue.vc)
                break

    # -- runtime faults --------------------------------------------------

    def _reroute(self, packet) -> tuple[str, int] | None:
        """Detour (port, vc) around a dead output, or None when the
        residual graph offers no path to ``packet.dst``.

        Detours always use VC 0: the fallback table is shortest-path
        over an arbitrary residual graph, so no dateline argument
        applies — acceptable for degraded operation, which the run
        flags via the resilience report.

        Adaptive algorithms handle faults natively: their re-decision
        (fault-aware since the network's ``on_fault_update``) replaces
        the legacy BFS table, which they never consult.
        """
        if self.routing.adaptive:
            decision = self.routing.decide(self.node, packet)
            if decision.port in self.dead_ports:
                # The algorithm itself funnels unreachable packets
                # into a dead port: no residual path exists.
                return None
            if self.reroute_sink is not None:
                self.reroute_sink(self.node, packet)
            return decision.port, min(decision.vc, self.num_vcs - 1)
        if self.fallback is None:
            return None
        out_port = self.fallback.next_port(self.node, packet.dst)
        if out_port is None or out_port in self.dead_ports:
            return None
        if self.reroute_sink is not None:
            self.reroute_sink(self.node, packet)
        return out_port, 0

    def invalidate_routes_via(self, port_name: str) -> list:
        """React to output *port_name* dying: forget parked routing
        decisions through it (their packets re-decide and detour) and
        return the packets that cannot detour — those with an
        established wormhole route through the port or with flits
        already sitting in its queues — for the network to kill.
        """
        victims: list = []
        for port in self._input_order:
            stale = [
                wire_vc
                for wire_vc, (out_port, _) in port.pending.items()
                if out_port == port_name
            ]
            for wire_vc in stale:
                del port.pending[wire_vc]
            victims.extend(port.switching.packets_via(port_name))
        for queue in self._outputs[port_name].queues:
            victims.extend({flit.packet for flit in queue.flits()})
        return victims

    def purge_packet(self, packet) -> int:
        """Remove every flit of *packet* from this router (fault
        handling), returning upstream credits for freed lane slots and
        recording each removed flit through the drop sink.

        Returns:
            The number of flits removed here.
        """
        dropped = 0
        for port in self._input_order:
            for wire_vc, lane in enumerate(port.lanes):
                removed = lane.remove_packet(packet)
                if not removed:
                    continue
                dropped += len(removed)
                port.pending.pop(wire_vc, None)
                records = port.credit_records
                for flit in removed:
                    if records is None:
                        self.send(
                            CreditMessage(wire_vc), port.credit_gate
                        )
                    else:
                        self._fast_append(records[wire_vc])
                    if self.drop_sink is not None:
                        self.drop_sink(flit)
            port.switching.clear_packet(packet)
        for out_port in self._output_order:
            for queue in out_port.queues:
                removed = queue.remove_packet(packet)
                dropped += len(removed)
                for flit in removed:
                    if self.drop_sink is not None:
                        self.drop_sink(flit)
                if queue.owner is packet:
                    queue.owner = None
        return dropped

    # -- drain recovery (forced-move phase) ------------------------------
    #
    # The primitives below implement one router's share of a drain
    # epoch (see repro.resilience.drain): the DrainController plans a
    # rotation along a preconfigured ring of (output queue, input
    # lane) resources and executes it through these methods, which
    # keep every flow-control counter exact.  ``drain_moves`` is the
    # router's epoch bookkeeping: forced moves executed here.

    def drain_queue_info(
        self, port_name: str, vc: int, now: int
    ) -> tuple[bool, bool, int]:
        """Drain-plan view of output queue ``(port, vc)``.

        Returns:
            ``(has_head, can_claim, free_slots)`` — whether the queue
            holds a flit to force-send, whether a redirected head
            flit may legally be enqueued this cycle (no worm in
            progress, no enqueue this cycle), and how many slots are
            free right now (the controller adds one when it also
            pops the head).
        """
        queue = self._outputs[port_name].queues[vc]
        can_claim = (
            queue.owner is None and queue.last_enqueue_cycle != now
        )
        return (
            not queue.is_empty,
            can_claim,
            queue.capacity - len(queue),
        )

    def drain_lane_room(self, input_name: str, vc: int) -> int:
        """Free slots in input lane ``(input_name, vc)`` right now."""
        lane = self._inputs[input_name].lanes[vc]
        return lane.capacity - len(lane)

    def drain_find_pull(
        self,
        loop_out: str,
        vc: int,
        loop_in: str,
        assume_pop: bool,
        now: int,
    ) -> tuple[str, int, str, int] | None:
        """Plan one lane-to-queue move for a drain rotation.

        Scans the input lanes — loop input first, then the rest in
        port order — for a lane-head flit that can advance this
        cycle:

        * a **body** flit follows its established switching route
          (wormhole order is inviolable);
        * a **head** flit follows its parked routing decision when
          that queue has room, and is otherwise *misrouted* onto the
          loop output queue ``(loop_out, vc)`` — the DRAIN move that
          breaks dependency cycles (routing re-decides downstream).

        *assume_pop* credits the loop queue with one extra slot (the
        controller plans to force-send its head in the same epoch).
        Returns ``(input name, wire vc, out port, out vc)`` or None;
        mutates nothing.
        """
        ordered = sorted(
            self._inputs.values(),
            key=lambda p: (p.name != loop_in, p.name),
        )
        for port in ordered:
            for wire_vc, lane in enumerate(port.lanes):
                flit = lane.head()
                if flit is None or flit.packet.killed:
                    continue
                if flit.is_head:
                    targets = []
                    pending = port.pending.get(wire_vc)
                    if pending is not None:
                        targets.append(pending)
                    if flit.packet.dst != self.node:
                        targets.append((loop_out, vc))
                else:
                    if not port.switching.has_route(wire_vc):
                        continue  # pragma: no cover - defensive
                    targets = [
                        port.switching.route_of(
                            wire_vc, flit.packet
                        )
                    ]
                for out_port, out_vc in targets:
                    if out_port in self.dead_ports:
                        continue
                    queue = self._outputs[out_port].queues[out_vc]
                    if queue.last_enqueue_cycle == now:
                        continue
                    if flit.is_head:
                        if queue.owner is not None:
                            continue
                    elif queue.owner is not flit.packet:
                        continue  # pragma: no cover - defensive
                    free = queue.capacity - len(queue)
                    if (
                        assume_pop
                        and (out_port, out_vc) == (loop_out, vc)
                        and not queue.is_empty
                    ):
                        free += 1
                    if free < 1:
                        continue
                    return port.name, wire_vc, out_port, out_vc
        return None

    def drain_execute_pull(
        self,
        input_name: str,
        wire_vc: int,
        out_port: str,
        out_vc: int,
        now: int,
    ):
        """Execute a planned pull: move the lane head into the queue.

        For a head flit this commits (or overrides) its routing
        decision — switching state, queue ownership and the upstream
        credit behave exactly as for a won allocation; body flits
        just continue their worm.  Returns the flit.
        """
        port = self._inputs[input_name]
        flit = port.lanes[wire_vc].head()
        queue = self._outputs[out_port].queues[out_vc]
        if flit.is_head:
            port.pending.pop(wire_vc, None)
            port.switching.set_route(
                wire_vc, flit.packet, out_port, out_vc
            )
        self._execute_move(port, wire_vc, flit, queue, now)
        self.drain_moves += 1
        return flit

    def drain_pop_for_send(self, port_name: str, vc: int):
        """Forced send, upstream half: pop the loop queue head and
        account for it exactly like :meth:`send_phase` (credit
        consumed, hop counted) — the controller delivers the flit
        into the downstream lane with zero wire delay.
        """
        port = self._outputs[port_name]
        queue = port.queues[vc]
        flit = queue.pop()
        port.credits[vc] -= 1
        port.flits_sent += 1
        port.flits_sent_by_vc[vc] += 1
        if flit.is_head and port.name != LOCAL_PORT:
            flit.packet.hops += 1
        flit.wire_vc = vc
        self.drain_moves += 1
        return flit

    def drain_deliver(self, input_name: str, wire_vc: int, flit) -> None:
        """Forced send, downstream half: accept *flit* into the loop
        input lane (killed packets drop on arrival with their credit
        returned, as on a normal wire delivery)."""
        port = self._inputs[input_name]
        if flit.packet.killed:
            records = port.credit_records
            if records is None:
                self.send(CreditMessage(wire_vc), port.credit_gate)
            else:  # pragma: no cover - drain forces the event loop
                self._fast_append(records[wire_vc])
            if self.drop_sink is not None:
                self.drop_sink(flit)
            return
        port.lanes[wire_vc].push(flit)
        self.scheduler.activate(self)

    def has_pending_work(self) -> bool:
        """True while any lane or queue holds a flit."""
        for port in self._input_order:
            for lane in port.lanes:
                if not lane.is_empty:
                    return True
        for port in self._output_order:
            for queue in port.queues:
                if not queue.is_empty:
                    return True
        return False

    # -- introspection (tests, debugging) --------------------------------

    def input_occupancy(self, name: str, vc: int | None = None) -> int:
        port = self._inputs[name]
        if vc is None:
            return port.occupancy()
        return len(port.lanes[vc])

    def output_occupancy(self, name: str, vc: int | None = None) -> int:
        port = self._outputs[name]
        if vc is None:
            return port.occupancy()
        return len(port.queues[vc])

    def credits_for(self, name: str, vc: int = 0) -> int:
        return self._outputs[name].credits[vc]

    def flits_sent_on(self, name: str, vc: int | None = None) -> int:
        """Flits forwarded on output port *name* (one VC, or all)."""
        port = self._outputs[name]
        if vc is None:
            return port.flits_sent
        return port.flits_sent_by_vc[vc]

    def output_data_gates(self) -> list[tuple[str, Gate]]:
        """Every output port as ``(name, data gate)`` — the public
        wiring view observers use to map links without reaching into
        the router's internals."""
        return [
            (port.name, port.data_gate) for port in self._output_order
        ]

    def occupancy_snapshot(self) -> dict[str, dict[str, list[int]]]:
        """Per-port, per-VC buffer occupancy right now.

        Returns:
            ``{"inputs": {port: [flits per lane]},
            "outputs": {port: [flits per queue]}}`` — the shape the
            occupancy timeline and congestion diagnostics consume.
        """
        return {
            "inputs": {
                port.name: [len(lane) for lane in port.lanes]
                for port in self._input_order
            },
            "outputs": {
                port.name: [len(queue) for queue in port.queues]
                for port in self._output_order
            },
        }

    def total_buffered_flits(self) -> int:
        """Every flit currently inside this router."""
        return sum(p.occupancy() for p in self._input_order) + sum(
            p.occupancy() for p in self._output_order
        )

    def peak_buffer_occupancy(self) -> int:
        """Deepest any single lane or queue got so far (flits)."""
        peaks = [
            lane.peak
            for port in self._input_order
            for lane in port.lanes
        ]
        peaks.extend(
            queue.peak
            for port in self._output_order
            for queue in port.queues
        )
        return max(peaks, default=0)