"""Replays a :class:`~repro.traffic.trace.Trace` into the network.

The driver walks the time-ordered trace with chained self-messages —
one pending event at a time — and hands each packet to the source
node's network interface at exactly the recorded cycle.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.messages import Message
from repro.sim.module import SimModule
from repro.traffic.trace import Trace


class _TraceTick(Message):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name="trace-tick")


class TraceDriver(SimModule):
    """Injects trace entries into the owning network's interfaces."""

    def __init__(
        self,
        simulator: Simulator,
        trace: Trace,
        interfaces,
        packet_size_flits: int,
        name: str = "trace-driver",
    ) -> None:
        super().__init__(simulator, name)
        self._trace = trace
        self._interfaces = interfaces
        self._packet_size = packet_size_flits
        self._cursor = 0
        self._tick = _TraceTick()
        self.packets_injected = 0
        self.packets_dropped = 0

    def initialize(self) -> None:
        self._arm_next()

    def _arm_next(self) -> None:
        if self._cursor >= len(self._trace.entries):
            return
        next_time = self._trace.entries[self._cursor].time
        self.schedule_self(next_time - self.now, self._tick)

    def handle_message(self, message: Message) -> None:
        entries = self._trace.entries
        now = self.now
        while self._cursor < len(entries) and (
            entries[self._cursor].time == now
        ):
            entry = entries[self._cursor]
            self._cursor += 1
            packet = Packet(
                entry.src, entry.dst, self._packet_size, created_at=now
            )
            self._interfaces[entry.src].stats.record_generated(now)
            try:
                self._interfaces[entry.src].enqueue_packet(packet)
                self.packets_injected += 1
            except ValueError:
                # Bounded IP memory: same drop semantics as the
                # stochastic sources.
                self._interfaces[entry.src].stats.record_rejected(now)
                self.packets_dropped += 1
        self._arm_next()
