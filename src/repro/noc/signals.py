"""Wire-level messages: flits and credits.

A :class:`FlitMessage` carries one flit across a link together with
the virtual-channel id it was sent on (flits of different packets may
interleave on a physical link when the output queues belong to
different VCs, and the receiver needs the id to pick the right
switching state).

A :class:`CreditMessage` is the flow-control return signal: the
receiver of a flit sends one credit back when the flit leaves its
input buffer.  Credits travel with **zero delay** — the paper's "local
signal-based flow control" — which is what lets a one-flit input
buffer sustain one flit per cycle per link.
"""

from __future__ import annotations

from repro.noc.packet import Flit
from repro.sim.messages import Message

FLIT_KIND = 1
CREDIT_KIND = 2


class FlitMessage(Message):
    """One flit in flight on a link."""

    __slots__ = ("flit", "wire_vc")

    def __init__(self, flit: Flit, wire_vc: int) -> None:
        super().__init__(name="flit", kind=FLIT_KIND)
        self.flit = flit
        self.wire_vc = wire_vc


class CreditMessage(Message):
    """One buffer slot freed at the downstream end of a link.

    Credits are per virtual channel: the downstream input port keeps
    one lane per VC, and the upstream sender tracks a credit counter
    per VC — the separation that makes the dateline discipline
    actually deadlock-free (a shared input buffer would let VC1
    traffic block behind VC0 traffic and close the ring's channel
    dependency cycle).
    """

    __slots__ = ("vc",)

    def __init__(self, vc: int) -> None:
        super().__init__(name="credit", kind=CREDIT_KIND)
        self.vc = vc
