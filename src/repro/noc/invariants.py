"""Runtime invariant checking for a NoC simulation.

:class:`InvariantChecker` audits a network on demand (typically every
few thousand cycles in long soak runs, or once at the end of a test):

* **conservation** — injected flits = consumed + buffered + in
  flight + dropped (runtime faults), nothing lost or duplicated;
* **buffer bounds** — no FIFO above its capacity (flow control never
  overruns);
* **credit consistency** — for every link, the sender's credit count
  plus occupied downstream lane slots plus in-flight traffic equals
  the lane capacity;
* **wormhole integrity** — each output queue's flits form contiguous
  in-order runs per packet.

Violations raise :class:`InvariantViolation` with a description
precise enough to debug from.  The checker is read-only.
"""

from __future__ import annotations

from repro.noc.network import Network
from repro.noc.signals import CreditMessage, FlitMessage


class InvariantViolation(AssertionError):
    """A model-correctness invariant failed."""


class InvariantChecker:
    """Read-only auditor for a :class:`~repro.noc.network.Network`."""

    def __init__(self, network: Network) -> None:
        self.network = network

    # -- individual checks ------------------------------------------------

    def check_conservation(self) -> None:
        net = self.network
        consumed = (
            net.stats.flits_consumed + net.stats.warmup_flits_consumed
        )
        buffered = sum(
            router.total_buffered_flits() for router in net.routers
        )
        in_flight = self._in_flight_flits()
        dropped = net.stats.flits_dropped
        total = consumed + buffered + in_flight + dropped
        if net.stats.flits_injected != total:
            raise InvariantViolation(
                f"flit conservation broken: injected "
                f"{net.stats.flits_injected} != consumed {consumed} "
                f"+ buffered {buffered} + in-flight {in_flight} "
                f"+ dropped {dropped}"
            )

    def check_buffer_bounds(self) -> None:
        for router in self.network.routers:
            for port in router._input_order:
                for lane in port.lanes:
                    if len(lane) > lane.capacity:
                        raise InvariantViolation(
                            f"{router.name} input {port.name}: lane "
                            f"over capacity ({len(lane)} > "
                            f"{lane.capacity})"
                        )
            for port in router._output_order:
                for queue in port.queues:
                    if len(queue) > queue.capacity:
                        raise InvariantViolation(
                            f"{router.name} output {port.name}/vc"
                            f"{queue.vc} over capacity"
                        )

    def check_credit_consistency(self) -> None:
        """Sender credits + receiver occupancy + in-flight = capacity.

        In-flight counts both unconsumed flit messages (slot already
        reserved at the sender) and unconsumed credit messages (slot
        freed at the receiver but not yet visible at the sender).
        """
        net = self.network
        in_flight_flits, in_flight_credits = self._in_flight_by_gate()
        for router in net.routers:
            for port in router._output_order:
                peer_gate = port.data_gate.peer
                assert peer_gate is not None
                peer_module = peer_gate.module
                for vc, credits in enumerate(port.credits):
                    occupancy = self._lane_occupancy(
                        peer_module, peer_gate, vc
                    )
                    if occupancy is None:
                        continue  # NI sink: consumes instantly
                    flits = in_flight_flits.get((peer_gate, vc), 0)
                    credit_msgs = in_flight_credits.get(
                        (port.data_gate.module, port.name, vc), 0
                    )
                    capacity = net.config.input_buffer_flits
                    total = credits + occupancy + flits + credit_msgs
                    if total != capacity:
                        raise InvariantViolation(
                            f"{router.name} port {port.name} vc{vc}: "
                            f"credits {credits} + occupancy "
                            f"{occupancy} + flits-in-flight {flits} "
                            f"+ credits-in-flight {credit_msgs} != "
                            f"capacity {capacity}"
                        )

    def check_wormhole_integrity(self) -> None:
        for router in self.network.routers:
            for port in router._output_order:
                for queue in port.queues:
                    self._check_queue_order(router, queue)

    def check_all(self) -> None:
        """Run every invariant check."""
        self.check_conservation()
        self.check_buffer_bounds()
        self.check_credit_consistency()
        self.check_wormhole_integrity()

    # -- helpers ------------------------------------------------------------

    def _in_flight_flits(self) -> int:
        return sum(
            1
            for event in self.network.simulator.pending_events()
            if isinstance(event.message, FlitMessage)
        )

    def _in_flight_by_gate(self):
        flits: dict = {}
        credits: dict = {}
        for event in self.network.simulator.pending_events():
            message = event.message
            if isinstance(message, FlitMessage):
                key = (message.arrival_gate, message.wire_vc)
                flits[key] = flits.get(key, 0) + 1
            elif isinstance(message, CreditMessage):
                gate = message.arrival_gate
                assert gate is not None
                # Identify the output port that owns the credit-in
                # gate: gates are named "credit_in:<port>".
                port_name = gate.name.split(":", 1)[1]
                key = (gate.module, port_name, message.vc)
                credits[key] = credits.get(key, 0) + 1
        return flits, credits

    def _lane_occupancy(self, module, data_in_gate, vc):
        """Occupancy of the receiving lane, or None for NI sinks."""
        from repro.noc.router import Router

        if not isinstance(module, Router):
            return None
        port = module._input_of_gate[data_in_gate]
        return len(port.lanes[vc])

    @staticmethod
    def _check_queue_order(router, queue) -> None:
        flits = list(queue._flits)
        for earlier, later in zip(flits, flits[1:]):
            if earlier.packet is later.packet:
                if later.index != earlier.index + 1:
                    raise InvariantViolation(
                        f"{router.name} {queue.port}/vc{queue.vc}: "
                        f"flits of packet "
                        f"{earlier.packet.packet_id} out of order"
                    )
        # Flits of one packet must be contiguous.
        seen_packets = []
        for flit in flits:
            if (
                seen_packets
                and flit.packet is not seen_packets[-1]
                and flit.packet in seen_packets
            ):
                raise InvariantViolation(
                    f"{router.name} {queue.port}/vc{queue.vc}: "
                    f"interleaved packets in queue"
                )
            if not seen_packets or flit.packet is not seen_packets[-1]:
                seen_packets.append(flit.packet)
