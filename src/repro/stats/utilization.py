"""Link-utilization analysis.

The paper's introduction lists "the high correlation of the link
traffic" and "severe energy ... constraints" among the on-chip
realities.  Per-link flit counts are the standard first-order proxy
for both: utilization imbalance reveals traffic hot links, and total
link traversals scale with dynamic interconnect energy.

Usage::

    network = Network(topology, traffic=traffic)
    network.run(cycles=20_000, warmup=4_000)
    report = UtilizationReport.from_network(network)
    print(report.mean_utilization, report.peak.utilization)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.base import LOCAL_PORT


@dataclass(frozen=True, slots=True)
class LinkLoad:
    """Traffic on one unidirectional link.

    Attributes:
        node: Source router of the link.
        port: Output-port name at the source router.
        flits: Total flits forwarded over the run.
        utilization: Flits per cycle (0..1 — each link carries at most
            one flit per cycle).
    """

    node: int
    port: str
    flits: int
    utilization: float


@dataclass(frozen=True, slots=True)
class UtilizationReport:
    """Aggregate link-load statistics for one run."""

    loads: tuple[LinkLoad, ...]
    cycles: int

    @classmethod
    def from_network(
        cls, network, include_local: bool = False
    ) -> "UtilizationReport":
        """Build a report from a completed :class:`~repro.noc.Network`.

        Args:
            network: A network whose ``run`` has finished.
            include_local: Also count the ejection links when True.

        Raises:
            ValueError: if the network has not been run.
        """
        if network.cycles_run <= 0:
            raise ValueError("network has not been run yet")
        cycles = network.cycles_run
        loads = []
        for (node, port), flits in sorted(
            network.link_flit_counts().items()
        ):
            if port == LOCAL_PORT and not include_local:
                continue
            loads.append(
                LinkLoad(node, port, flits, flits / cycles)
            )
        return cls(tuple(loads), cycles)

    @property
    def total_flit_hops(self) -> int:
        """Total link traversals — the dynamic-energy proxy."""
        return sum(load.flits for load in self.loads)

    @property
    def mean_utilization(self) -> float:
        if not self.loads:
            return 0.0
        return sum(l.utilization for l in self.loads) / len(self.loads)

    @property
    def peak(self) -> LinkLoad:
        """The busiest link.

        Raises:
            ValueError: if the report is empty.
        """
        if not self.loads:
            raise ValueError("no links in report")
        return max(self.loads, key=lambda l: (l.utilization, -l.node))

    @property
    def imbalance(self) -> float:
        """Peak-to-mean utilization ratio (1.0 = perfectly balanced).

        Returns 0.0 for an idle network.
        """
        mean = self.mean_utilization
        if mean == 0:
            return 0.0
        return self.peak.utilization / mean

    def busiest(self, count: int = 5) -> list[LinkLoad]:
        """The *count* most-loaded links, busiest first."""
        return sorted(
            self.loads, key=lambda l: l.utilization, reverse=True
        )[:count]
