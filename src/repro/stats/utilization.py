"""Link-utilization analysis: end-of-run aggregates and timelines.

The paper's introduction lists "the high correlation of the link
traffic" and "severe energy ... constraints" among the on-chip
realities.  Per-link flit counts are the standard first-order proxy
for both: utilization imbalance reveals traffic hot links, and total
link traversals scale with dynamic interconnect energy.

Two granularities live here:

* :class:`UtilizationReport` — whole-run aggregates, built from a
  finished :class:`~repro.noc.network.Network` (sees saturation but
  cannot localize it in time);
* :class:`UtilizationTimeline` — per-link, per-VC flit counts bucketed
  into fixed-size time *windows*, plus per-node buffer-occupancy
  samples.  This is the plain-data half of the observability layer:
  it is populated live by :class:`repro.obs.TimelineObserver`,
  survives a JSON round trip bit-exactly (:meth:`to_dict` /
  :meth:`from_dict`), and renders as an ASCII heat table
  (:meth:`heat_table`) showing *where and when* congestion forms.

Usage::

    network = Network(topology, traffic=traffic)
    network.run(cycles=20_000, warmup=4_000)
    report = UtilizationReport.from_network(network)
    print(report.mean_utilization, report.peak.utilization)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.base import LOCAL_PORT

#: Shade characters for :meth:`UtilizationTimeline.heat_table`, lowest
#: utilization first.  ASCII only, so tables paste into logs and docs.
HEAT_CHARS = " .:-=+*#%@"


@dataclass(frozen=True, slots=True)
class LinkLoad:
    """Traffic on one unidirectional link.

    Attributes:
        node: Source router of the link.
        port: Output-port name at the source router.
        flits: Total flits forwarded over the run.
        utilization: Flits per cycle (0..1 — each link carries at most
            one flit per cycle).
    """

    node: int
    port: str
    flits: int
    utilization: float


@dataclass(frozen=True, slots=True)
class UtilizationReport:
    """Aggregate link-load statistics for one run."""

    loads: tuple[LinkLoad, ...]
    cycles: int

    @classmethod
    def from_network(
        cls, network, include_local: bool = False
    ) -> "UtilizationReport":
        """Build a report from a completed :class:`~repro.noc.Network`.

        Args:
            network: A network whose ``run`` has finished.
            include_local: Also count the ejection links when True.

        Raises:
            ValueError: if the network has not been run.
        """
        if network.cycles_run <= 0:
            raise ValueError("network has not been run yet")
        cycles = network.cycles_run
        loads = []
        for (node, port), flits in sorted(
            network.link_flit_counts().items()
        ):
            if port == LOCAL_PORT and not include_local:
                continue
            loads.append(
                LinkLoad(node, port, flits, flits / cycles)
            )
        return cls(tuple(loads), cycles)

    @property
    def total_flit_hops(self) -> int:
        """Total link traversals — the dynamic-energy proxy."""
        return sum(load.flits for load in self.loads)

    @property
    def mean_utilization(self) -> float:
        if not self.loads:
            return 0.0
        return sum(l.utilization for l in self.loads) / len(self.loads)

    @property
    def peak(self) -> LinkLoad:
        """The busiest link.

        Raises:
            ValueError: if the report is empty.
        """
        if not self.loads:
            raise ValueError("no links in report")
        return max(self.loads, key=lambda l: (l.utilization, -l.node))

    @property
    def imbalance(self) -> float:
        """Peak-to-mean utilization ratio (1.0 = perfectly balanced).

        Returns 0.0 for an idle network.
        """
        mean = self.mean_utilization
        if mean == 0:
            return 0.0
        return self.peak.utilization / mean

    def busiest(self, count: int = 5) -> list[LinkLoad]:
        """The *count* most-loaded links, busiest first."""
        return sorted(
            self.loads, key=lambda l: l.utilization, reverse=True
        )[:count]


@dataclass(frozen=True, slots=True)
class LinkWindowSeries:
    """Windowed flit counts of one (link, virtual channel).

    Attributes:
        node: Source router of the link.
        port: Output-port name at the source router (matches
            :attr:`LinkLoad.port` keying).
        dst: Destination node of the link (redundant with the
            topology, carried so exported timelines are
            self-describing).
        vc: Virtual channel the flits travelled on.
        counts: Flits forwarded per window, window 0 first.
        kind: Link kind from the topology's
            :class:`~repro.topology.base.LinkAttrs` ("planar", "tsv",
            "local", ...), carried so exported timelines distinguish
            TSV traffic without the topology at hand.
        latency: Link traversal latency in cycles (same source).
    """

    node: int
    port: str
    dst: int
    vc: int
    counts: tuple[int, ...]
    kind: str = "planar"
    latency: int = 1

    @property
    def total_flits(self) -> int:
        return sum(self.counts)


@dataclass(frozen=True, slots=True)
class OccupancySeries:
    """Buffer-occupancy samples of one node over time.

    Attributes:
        node: The sampled node.
        samples: ``(window_index, flits)`` pairs — flits buffered
            inside the node's router plus packets-worth of flits
            waiting in its IP memory, sampled as each window closes.
    """

    node: int
    samples: tuple[tuple[int, int], ...]

    @property
    def peak(self) -> int:
        return max((flits for _, flits in self.samples), default=0)


@dataclass(frozen=True, slots=True)
class UtilizationTimeline:
    """Per-link, per-VC utilization over fixed time windows.

    The timeline is plain data: every field is built from ints,
    strings and tuples, so two timelines of the same run compare equal
    regardless of how (serially, in a worker process, reloaded from
    JSON) they were produced — the property the serial-vs-parallel
    equality tests pin.

    Attributes:
        window: Window width in cycles.
        cycles: Total simulated cycles the timeline covers.
        links: One series per (link, VC), sorted by (node, port, vc).
        occupancy: Per-node buffer-occupancy samples.
    """

    window: int
    cycles: int
    links: tuple[LinkWindowSeries, ...]
    occupancy: tuple[OccupancySeries, ...]

    @property
    def num_windows(self) -> int:
        """Windows covering ``cycles`` (the last may be partial)."""
        return -(-self.cycles // self.window)

    def _window_cycles(self, index: int) -> int:
        """Cycles actually covered by window *index*."""
        if index < self.num_windows - 1:
            return self.window
        return self.cycles - index * self.window

    def link_series(
        self, node: int, port: str
    ) -> tuple[LinkWindowSeries, ...]:
        """Every VC series of the link at (*node*, *port*)."""
        return tuple(
            series
            for series in self.links
            if series.node == node and series.port == port
        )

    def link_totals(self) -> dict[tuple[int, str], int]:
        """Whole-run flits per link, VCs summed — comparable to
        :meth:`~repro.noc.network.Network.link_flit_counts`."""
        totals: dict[tuple[int, str], int] = {}
        for series in self.links:
            key = (series.node, series.port)
            totals[key] = totals.get(key, 0) + series.total_flits
        return totals

    def utilization_series(self, node: int, port: str) -> list[float]:
        """Per-window utilization of one link (VCs summed)."""
        sums = [0] * self.num_windows
        for series in self.link_series(node, port):
            for index, count in enumerate(series.counts):
                sums[index] += count
        return [
            count / self._window_cycles(index)
            for index, count in enumerate(sums)
        ]

    def busiest_links(
        self, count: int = 5
    ) -> list[tuple[int, str, int, float]]:
        """The *count* most-loaded links as ``(node, port, dst,
        utilization)``, busiest first, with VCs summed."""
        dst_of = {
            (series.node, series.port): series.dst
            for series in self.links
        }
        ranked = sorted(
            self.link_totals().items(),
            key=lambda item: (-item[1], item[0]),
        )
        return [
            (node, port, dst_of[(node, port)], flits / self.cycles)
            for (node, port), flits in ranked[:count]
        ]

    def to_dict(self) -> dict:
        """JSON-ready mapping; inverse of :meth:`from_dict`."""
        return {
            "window": self.window,
            "cycles": self.cycles,
            "links": [
                {
                    "node": series.node,
                    "port": series.port,
                    "dst": series.dst,
                    "vc": series.vc,
                    "counts": list(series.counts),
                    "kind": series.kind,
                    "latency": series.latency,
                }
                for series in self.links
            ],
            "occupancy": [
                {
                    "node": series.node,
                    "samples": [list(pair) for pair in series.samples],
                }
                for series in self.occupancy
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UtilizationTimeline":
        """Rebuild a timeline from :meth:`to_dict` output (or its
        JSON round trip)."""
        return cls(
            window=data["window"],
            cycles=data["cycles"],
            links=tuple(
                LinkWindowSeries(
                    node=entry["node"],
                    port=entry["port"],
                    dst=entry["dst"],
                    vc=entry["vc"],
                    counts=tuple(entry["counts"]),
                    # Absent in pre-heterogeneous-link exports.
                    kind=entry.get("kind", "planar"),
                    latency=entry.get("latency", 1),
                )
                for entry in data["links"]
            ),
            occupancy=tuple(
                OccupancySeries(
                    node=entry["node"],
                    samples=tuple(
                        (window, flits)
                        for window, flits in entry["samples"]
                    ),
                )
                for entry in data["occupancy"]
            ),
        )

    def heat_table(self, max_links: int = 12) -> str:
        """ASCII heat table: one row per link (busiest first), one
        column per window, cell shade proportional to utilization.

        This is the textual equivalent of the per-link heat maps used
        to localize the paper's hot-spot congestion (figure 6): the
        hot-spot's incoming links show as the darkest rows.
        """
        ranked = self.busiest_links(max_links)
        if not ranked:
            return "(no link traffic recorded)\n"
        lines = [
            f"per-link utilization, {self.window}-cycle windows "
            f"(shade: '{HEAT_CHARS[0]}'=idle .. "
            f"'{HEAT_CHARS[-1]}'=saturated)"
        ]
        # Non-planar links carry their kind in the label so TSV rows
        # stand out; planar labels are unchanged.
        kind_of = {
            (series.node, series.port): series.kind
            for series in self.links
        }

        def link_label(node: int, port: str, dst: int) -> str:
            kind = kind_of.get((node, port), "planar")
            if kind == "planar":
                return f"{node}->{dst} ({port})"
            return f"{node}->{dst} ({port}, {kind})"

        label_width = max(
            len(link_label(node, port, dst))
            for node, port, dst, _ in ranked
        )
        for node, port, dst, utilization in ranked:
            label = link_label(node, port, dst).ljust(label_width)
            cells = "".join(
                HEAT_CHARS[
                    min(
                        int(value * len(HEAT_CHARS)),
                        len(HEAT_CHARS) - 1,
                    )
                ]
                for value in self.utilization_series(node, port)
            )
            lines.append(f"{label}  {utilization:5.3f}  |{cells}|")
        return "\n".join(lines) + "\n"
