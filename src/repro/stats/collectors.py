"""Runtime measurement of a NoC simulation.

One :class:`NetworkStats` instance is shared by every network
interface of a run.  Events before ``warmup_cycles`` are counted in
the ``warmup_*`` tallies but excluded from the reported metrics, which
is the standard steady-state measurement discipline.
"""

from __future__ import annotations

from collections import Counter

from repro.noc.packet import Packet


class NetworkStats:
    """Accumulates generation, injection and consumption events.

    Attributes:
        warmup_cycles: Events strictly before this cycle are excluded
            from the measured tallies.
        packets_generated / packets_rejected: Source-side counts
            (rejected = IP memory full).
        flits_injected: Flits accepted by source routers.
        flits_consumed / packets_consumed: Sink-side counts after
            warmup.
        latencies: Per-delivered-packet latency in cycles
            (creation to tail-flit consumption), after warmup.
        queueing_delays: Source-side component of each latency: cycles
            from packet creation to head-flit injection (time spent in
            IP memory).  The post-saturation latency explosion lives
            entirely in this component.
        network_latencies: In-network component: head-flit injection
            to tail-flit consumption.
        hop_counts: Per-delivered-packet hop count, after warmup.
        flits_dropped: Injected flits discarded because a runtime
            link failure killed their packet.  Conservation becomes
            injected = consumed + buffered + in flight + dropped.
        packets_killed: Packets declared undeliverable by runtime
            faults (each contributes its surviving flits to
            ``flits_dropped``).
    """

    def __init__(self, warmup_cycles: int = 0) -> None:
        if warmup_cycles < 0:
            raise ValueError(
                f"warmup_cycles must be >= 0, got {warmup_cycles}"
            )
        self.warmup_cycles = warmup_cycles
        self.packets_generated = 0
        self.packets_rejected = 0
        self.flits_injected = 0
        self.flits_consumed = 0
        self.packets_consumed = 0
        self.flits_dropped = 0
        self.packets_killed = 0
        self.warmup_flits_consumed = 0
        self.warmup_packets_consumed = 0
        self.latencies: list[int] = []
        self.queueing_delays: list[int] = []
        self.network_latencies: list[int] = []
        self.hop_counts: list[int] = []
        self.delivered_by_source: Counter[int] = Counter()

    def record_generated(self, now: int) -> None:
        self.packets_generated += 1

    def record_rejected(self, now: int) -> None:
        self.packets_rejected += 1

    def record_injected_flit(self, now: int) -> None:
        self.flits_injected += 1

    def record_dropped_flit(self, now: int) -> None:
        self.flits_dropped += 1

    def record_packet_killed(self, now: int) -> None:
        self.packets_killed += 1

    def record_consumed_flit(self, now: int) -> None:
        if now < self.warmup_cycles:
            self.warmup_flits_consumed += 1
        else:
            self.flits_consumed += 1

    def record_packet_delivered(self, packet: Packet, now: int) -> None:
        if now < self.warmup_cycles:
            self.warmup_packets_consumed += 1
            return
        self.packets_consumed += 1
        self.latencies.append(now - packet.created_at)
        if packet.injected_at is None:
            raise ValueError(
                f"delivered packet {packet.packet_id} was never injected"
            )
        self.queueing_delays.append(
            packet.injected_at - packet.created_at
        )
        self.network_latencies.append(now - packet.injected_at)
        self.hop_counts.append(packet.hops)
        self.delivered_by_source[packet.src] += 1
