"""Periodic buffer-occupancy sampling during a run.

The paper's buffer-tuning experiments ("modifying the overall buffer
capacity of nodes and buffer symmetry depending on the expected link
usage") need visibility into how full the queues actually run.  An
:class:`OccupancySampler` snapshots every router's buffered-flit
count on a fixed period and summarises the series.

Create the sampler after building the network and before running::

    net = Network(topology, traffic=traffic)
    sampler = OccupancySampler(net, period=100)
    net.run(cycles=20_000, warmup=4_000)
    print(sampler.summary())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.messages import Message
from repro.sim.module import SimModule


class _SampleTick(Message):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name="occupancy-sample")


@dataclass(frozen=True, slots=True)
class OccupancySummary:
    """Aggregates over all samples taken after warmup."""

    samples: int
    mean_total_flits: float
    peak_total_flits: int
    peak_router: str
    mean_per_router: float


class OccupancySampler(SimModule):
    """Samples total buffered flits per router every *period* cycles."""

    def __init__(self, network, period: int = 100) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        super().__init__(network.simulator, "occupancy-sampler")
        self.network = network
        self.period = period
        self._tick = _SampleTick()
        #: (time, total flits) per sample.
        self.series: list[tuple[int, int]] = []
        #: (time, per-router occupancy list) kept for peak attribution.
        self._per_router_peak = (0, -1, "")

    def initialize(self) -> None:
        self.schedule_self(self.period, self._tick)

    def handle_message(self, message: Message) -> None:
        total = 0
        for router in self.network.routers:
            occupancy = router.total_buffered_flits()
            total += occupancy
            if occupancy > self._per_router_peak[1]:
                self._per_router_peak = (
                    self.now,
                    occupancy,
                    router.name,
                )
        self.series.append((self.now, total))
        self.schedule_self(self.period, self._tick)

    def summary(self, warmup: int = 0) -> OccupancySummary:
        """Summarise samples taken at or after cycle *warmup*.

        Raises:
            ValueError: if no samples fall in the window.
        """
        window = [(t, v) for t, v in self.series if t >= warmup]
        if not window:
            raise ValueError(
                f"no occupancy samples at or after cycle {warmup}"
            )
        totals = [v for _, v in window]
        num_routers = len(self.network.routers)
        return OccupancySummary(
            samples=len(window),
            mean_total_flits=sum(totals) / len(totals),
            peak_total_flits=max(totals),
            peak_router=self._per_router_peak[2],
            mean_per_router=sum(totals) / len(totals) / num_routers,
        )
