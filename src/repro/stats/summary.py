"""Run summaries and small statistical helpers.

Deliberately dependency-light: the helpers cover exactly what the
experiment harness needs (means, percentiles, normal-approximation
confidence intervals, knee detection on latency curves).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

from repro.stats.collectors import NetworkStats


def mean(values: list[float] | list[int]) -> float:
    """Arithmetic mean; raises on empty input rather than guessing."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def mean_or_none(values: list[float] | list[int]) -> float | None:
    """:func:`mean`, but ``None`` for an empty series.

    The zero-sample guard for summary metrics: a degraded run (stall
    watchdog abort before any post-warmup delivery) legitimately
    produces empty latency/hop series, and its summary must report
    the metric as undefined instead of crashing.
    """
    if not values:
        return None
    return sum(values) / len(values)


def percentile_or_none(
    values: list[float] | list[int], q: float
) -> float | None:
    """:func:`percentile`, but ``None`` for an empty series (same
    degraded-run contract as :func:`mean_or_none`)."""
    if not values:
        return None
    return percentile(values, q)


def percentile(values: list[float] | list[int], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def confidence_interval(
    values: list[float] | list[int], confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI of the mean as ``(center, half_width)``.

    Uses z = 1.96 for 95% and 2.576 for 99%; for other levels the
    inverse error function via :func:`math.erf` bisection would be
    overkill, so only those two levels are supported.
    """
    if len(values) < 2:
        raise ValueError("confidence interval needs >= 2 samples")
    z_by_level = {0.95: 1.96, 0.99: 2.576}
    if confidence not in z_by_level:
        raise ValueError(
            f"supported confidence levels: {sorted(z_by_level)}, "
            f"got {confidence}"
        )
    center = mean(values)
    variance = sum((v - center) ** 2 for v in values) / (len(values) - 1)
    half_width = z_by_level[confidence] * math.sqrt(
        variance / len(values)
    )
    return center, half_width


def histogram(
    values: list[float] | list[int], bucket_width: float
) -> dict[float, int]:
    """Counts per bucket; keys are bucket lower bounds.

    Used to inspect latency distributions (the paper reports means;
    the tail behaviour around saturation is easier to see bucketed).

    Raises:
        ValueError: on empty input or non-positive width.
    """
    if not values:
        raise ValueError("histogram of empty sequence")
    if bucket_width <= 0:
        raise ValueError(
            f"bucket_width must be > 0, got {bucket_width}"
        )
    counts: dict[float, int] = {}
    for value in values:
        bucket = math.floor(value / bucket_width) * bucket_width
        counts[bucket] = counts.get(bucket, 0) + 1
    return dict(sorted(counts.items()))


def batch_means(
    values: list[float] | list[int],
    num_batches: int = 10,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Batch-means confidence interval for autocorrelated series.

    Simulation outputs (per-packet latencies in arrival order) are
    positively autocorrelated, so the naive i.i.d. CI is too narrow.
    Batch means splits the series into *num_batches* contiguous
    batches and builds the CI over the batch averages, which are
    nearly independent for reasonable batch sizes.

    Returns:
        ``(mean, half_width)``.

    Raises:
        ValueError: with fewer than 2 observations per batch.
    """
    if num_batches < 2:
        raise ValueError(
            f"need at least 2 batches, got {num_batches}"
        )
    batch_size = len(values) // num_batches
    if batch_size < 2:
        raise ValueError(
            f"{len(values)} observations are too few for "
            f"{num_batches} batches"
        )
    averages = [
        mean(values[i * batch_size:(i + 1) * batch_size])
        for i in range(num_batches)
    ]
    return confidence_interval(averages, confidence)


def detect_saturation_point(
    rates: list[float],
    latencies: list[float | None],
    threshold_factor: float = 3.0,
) -> float | None:
    """First injection rate where latency exceeds *threshold_factor*
    times the zero-load latency — the knee of the latency curve, used
    to compare saturation across topologies.

    A ``None`` latency (a degraded or zero-delivery sweep point, see
    :func:`mean_or_none`) is skipped: it carries no latency evidence
    either way.  The zero-load baseline is the first non-``None``
    point.

    Returns None when the curve never crosses the threshold (or no
    point carries a latency at all).
    """
    if len(rates) != len(latencies) or not rates:
        raise ValueError("rates and latencies must be equal, non-empty")
    baseline = None
    for rate, latency in zip(rates, latencies):
        if latency is None:
            continue
        if baseline is None:
            baseline = latency
        if latency > threshold_factor * baseline:
            return rate
    return None


@dataclass(slots=True)
class RunResult:
    """Everything measured in one simulation run.

    Attributes:
        topology_name / routing_name / pattern_name: Identification.
        num_nodes: Network size.
        num_sources: Nodes generating traffic.
        injection_rate: Offered load per source (flits/cycle).
        cycles: Total simulated cycles.
        warmup_cycles: Cycles excluded from measurement.
        throughput: Aggregate accepted traffic at sinks,
            flits/cycle, measured after warmup.
        avg_latency: Mean packet latency (cycles), None if no packet
            was delivered after warmup.
        avg_queueing_delay: Mean IP-memory waiting time (cycles) of
            delivered packets — the component that explodes past
            saturation.
        avg_network_latency: Mean injection-to-consumption time.
        p95_latency: 95th-percentile latency, same caveat.
        avg_hops: Mean head-flit hop count of delivered packets.
        packets_delivered / flits_delivered: Post-warmup counts.
        packets_generated / packets_rejected: Source-side totals.
        events_processed: Kernel events delivered over the run — a
            deterministic work measure (identical for serial and
            parallel execution of the same point) that the campaign
            report combines with wall time into events/sec.
        flits_dropped / packets_killed: Runtime-fault accounting
            (both 0 on a healthy run): flits discarded and packets
            declared undeliverable because a link failed mid-run.
        degraded: True when the run did not complete normally — the
            stall watchdog aborted it (see ``extra["stall"]``) — so
            the summary metrics cover a truncated horizon.
        extra: Free-form JSON-compatible extras — e.g. the exported
            utilization timeline (``extra["timeline"]``) when
            :attr:`SimulationSettings.timeline_window` is set, the
            kernel profile (``extra["kernel"]``) when profiling was
            requested, the runtime-fault report
            (``extra["resilience"]``) when links failed mid-run, or
            the stall diagnostic snapshot (``extra["stall"]``).
    """

    topology_name: str
    routing_name: str
    pattern_name: str
    num_nodes: int
    num_sources: int
    injection_rate: float
    cycles: int
    warmup_cycles: int
    throughput: float
    avg_latency: float | None
    avg_queueing_delay: float | None
    avg_network_latency: float | None
    p95_latency: float | None
    avg_hops: float | None
    packets_delivered: int
    flits_delivered: int
    packets_generated: int
    packets_rejected: int
    seed: int = 0
    events_processed: int = 0
    flits_dropped: int = 0
    packets_killed: int = 0
    degraded: bool = False
    extra: dict = field(default_factory=dict)

    #: Discriminator shared with
    #: :class:`~repro.experiments.parallel.FailedResult` (False there)
    #: so mixed result lists filter without isinstance checks.
    ok = True

    @property
    def offered_load(self) -> float:
        """Aggregate offered load, flits/cycle across all sources."""
        return self.injection_rate * self.num_sources

    @property
    def delivery_ratio(self) -> float:
        """Delivered / generated packets (over the whole run)."""
        if self.packets_generated == 0:
            return 0.0
        total_delivered = self.packets_delivered
        return total_delivered / self.packets_generated

    def to_dict(self) -> dict:
        """JSON-ready mapping of every field.

        Floats survive a JSON round trip exactly, so a result loaded
        back with :meth:`from_dict` is bit-identical to the original —
        the property the sweep result cache relies on.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    @classmethod
    def from_stats(
        cls,
        stats: NetworkStats,
        *,
        topology_name: str,
        routing_name: str,
        pattern_name: str,
        num_nodes: int,
        num_sources: int,
        injection_rate: float,
        cycles: int,
        seed: int = 0,
        events_processed: int = 0,
    ) -> "RunResult":
        """Summarise *stats* for a run of *cycles* total cycles."""
        measured = cycles - stats.warmup_cycles
        if measured <= 0:
            raise ValueError(
                f"run of {cycles} cycles leaves no measurement window "
                f"after {stats.warmup_cycles} warmup cycles"
            )
        throughput = stats.flits_consumed / measured
        return cls(
            topology_name=topology_name,
            routing_name=routing_name,
            pattern_name=pattern_name,
            num_nodes=num_nodes,
            num_sources=num_sources,
            injection_rate=injection_rate,
            cycles=cycles,
            warmup_cycles=stats.warmup_cycles,
            throughput=throughput,
            # _or_none guards: a degraded/truncated run can reach
            # here with empty series; its metrics are undefined, not
            # an error.
            avg_latency=mean_or_none(stats.latencies),
            avg_queueing_delay=mean_or_none(stats.queueing_delays),
            avg_network_latency=mean_or_none(stats.network_latencies),
            p95_latency=percentile_or_none(stats.latencies, 95),
            avg_hops=mean_or_none(stats.hop_counts),
            packets_delivered=stats.packets_consumed,
            flits_delivered=stats.flits_consumed,
            packets_generated=stats.packets_generated,
            packets_rejected=stats.packets_rejected,
            seed=seed,
            events_processed=events_processed,
            flits_dropped=stats.flits_dropped,
            packets_killed=stats.packets_killed,
        )
