"""Measurement: collectors, run summaries, and sweep analysis."""

from repro.stats.collectors import NetworkStats
from repro.stats.sampling import OccupancySampler, OccupancySummary
from repro.stats.summary import (
    RunResult,
    batch_means,
    confidence_interval,
    detect_saturation_point,
    histogram,
    mean,
    mean_or_none,
    percentile,
    percentile_or_none,
)
from repro.stats.utilization import LinkLoad, UtilizationReport

__all__ = [
    "LinkLoad",
    "NetworkStats",
    "OccupancySampler",
    "OccupancySummary",
    "RunResult",
    "UtilizationReport",
    "batch_means",
    "confidence_interval",
    "detect_saturation_point",
    "histogram",
    "mean",
    "mean_or_none",
    "percentile",
    "percentile_or_none",
]
