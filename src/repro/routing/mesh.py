"""Dimension-order (XY) routing on regular 2D meshes.

"In 2D Mesh NoC, Dimension order routing is adopted: flits from the
source node migrate along the X (horizontal link) nodes up to the
column of the target, then along the Y (vertical link) nodes up to the
target node."

XY routing on a full grid is minimal and deadlock-free with a single
virtual channel (turns from Y back to X never occur).  It is **not**
safe on irregular meshes, where an X-path row may have missing cells —
the constructor rejects those; use
:class:`~repro.routing.table.TableRouting` instead.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
    RoutingError,
)
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST, MeshTopology


class MeshXYRouting(RoutingAlgorithm):
    """Deterministic X-then-Y routing on a regular mesh."""

    required_vcs = 1

    def __init__(self, topology: MeshTopology) -> None:
        if not topology.is_regular:
            raise RoutingError(
                f"XY routing requires a regular mesh; {topology.name} "
                "has missing cells (use TableRouting)"
            )
        super().__init__(topology, f"xy/{topology.name}")
        self._mesh = topology

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, 0)
        row, col = self._mesh.coordinates(node)
        dst_row, dst_col = self._mesh.coordinates(packet.dst)
        if col < dst_col:
            return RouteDecision(EAST, 0)
        if col > dst_col:
            return RouteDecision(WEST, 0)
        if row < dst_row:
            return RouteDecision(SOUTH, 0)
        return RouteDecision(NORTH, 0)
