"""Minimal deadlock-free routing on circulant rings C(N; 1, s).

Routes execute in two phases — all chord hops first, then all unit
ring steps, each phase in a single rotation sense — realizing the
canonical minimal decomposition
(:func:`repro.topology.circulant.minimal_decomposition`).  Phase
ordering plays the role dimension order plays on the torus: ring
channels never feed chord channels, so the channel dependency graph
splits into independent chord and ring sub-graphs.

Deadlock freedom reuses the paper's dateline/VC mechanism
(docs/deadlock.md):

* **Ring phase** — exactly :mod:`repro.routing.ring`: shortest
  direction held for the rest of the route, promotion to VC 1 on the
  hop crossing the direction's dateline.  Minimal step counts are at
  most ``N/2``, so no packet crosses twice.
* **Chord phase** — the ``+s`` chords partition the nodes into
  ``gcd(N, s)`` disjoint cycles; each cycle gets its own dateline,
  the hop *into* the cycle's minimal node (maximal node for ``-s``
  chords).  That edge is the unique traversal-order-decreasing edge
  of its cycle, and the canonical decomposition never spends a full
  cycle lap (``|chords| < N / gcd(N, s)``), so again no packet
  crosses twice.
* The packet's VC class resets at the chord→ring turn, as at the
  torus's X→Y turn: chord and ring channels are disjoint resource
  sets crossed in a fixed order.

``tests/routing/test_deadlock_freedom.py`` rebuilds the channel
dependency graph from these rules and asserts acyclicity for the
whole tested (N, s) grid.

Two decomposition back-ends share this engine:

* :class:`CirculantTableRouting` — a per-offset table (vertex
  transitivity makes it O(N), not O(N^2)) from the exhaustive
  minimal decomposition; provably minimal on any C(N; 1, s).
* :class:`MultiplicativeCirculantRouting` — the analytic
  digit-decomposition scheme of arXiv 1902.03314 for ``N = s^2``:
  the offset is written as ``a1*s + a0`` with balanced digits, no
  table needed.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
)
from repro.routing.ring import dateline_vc
from repro.topology.circulant import (
    CirculantTopology,
    minimal_decomposition,
)
from repro.topology.ring import CLOCKWISE, COUNTERCLOCKWISE

_PLAN_KEY = "circulant_plan"
_PHASE_KEY = "circulant_phase"


class _CirculantDatelineRouting(RoutingAlgorithm):
    """Shared two-phase execution engine; subclasses pick the plan."""

    required_vcs = 2

    def __init__(self, topology: CirculantTopology, name: str) -> None:
        if not isinstance(topology, CirculantTopology):
            raise TypeError(
                f"circulant routing needs a CirculantTopology, got "
                f"{type(topology).__name__}"
            )
        super().__init__(topology, name)
        self._n = topology.num_nodes
        self._skip = topology.skip
        # Chord datelines, one per chord cycle: the hop into the
        # cycle's min (cw chords) / max (ccw chords) node.
        cycle_min = [0] * self._n
        cycle_max = [0] * self._n
        seen = [False] * self._n
        for start in range(self._n):
            if seen[start]:
                continue
            cycle = topology.chord_cycle_nodes(start)
            low, high = min(cycle), max(cycle)
            for node in cycle:
                seen[node] = True
                cycle_min[node] = low
                cycle_max[node] = high
        self._cycle_min = cycle_min
        self._cycle_max = cycle_max

    def decompose(self, offset: int) -> tuple[int, int]:
        """Signed (chords, steps) plan for a packet *offset* ahead."""
        raise NotImplementedError

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        plan = packet.route_state.get(_PLAN_KEY)
        if plan is None:
            chords, steps = self.decompose((packet.dst - node) % self._n)
            plan = [chords, steps]
            packet.route_state[_PLAN_KEY] = plan
        if plan[0]:
            direction = 1 if plan[0] > 0 else -1
            plan[0] -= direction
            return RouteDecision(
                self.topology.chord_port(direction),
                self._chord_vc(node, direction, packet),
            )
        direction = CLOCKWISE if plan[1] > 0 else COUNTERCLOCKWISE
        plan[1] -= 1 if plan[1] > 0 else -1
        if packet.route_state.get(_PHASE_KEY) != "ring":
            # Chord->ring turn: ring channels are a fresh resource
            # class, so the dateline VC class restarts (as at the
            # torus's X->Y turn).
            packet.route_state[_PHASE_KEY] = "ring"
            packet.vc = 0
        return RouteDecision(
            direction, dateline_vc(self._n, node, direction, packet)
        )

    def _chord_vc(self, node: int, direction: int, packet: Packet) -> int:
        target = (node + direction * self._skip) % self._n
        crossing = (
            target == self._cycle_min[node]
            if direction > 0
            else target == self._cycle_max[node]
        )
        if crossing:
            packet.vc = 1
        return packet.vc


class CirculantTableRouting(_CirculantDatelineRouting):
    """Table-based minimal routing: one decomposition per offset.

    Vertex transitivity means the table depends only on
    ``(dst - node) mod N`` — O(N) entries instead of the O(N^2) a
    generic next-hop table needs.
    """

    def __init__(self, topology: CirculantTopology) -> None:
        super().__init__(topology, f"circulant-table/{topology.name}")
        self._plans = [
            minimal_decomposition(self._n, self._skip, offset)
            for offset in range(self._n)
        ]

    def decompose(self, offset: int) -> tuple[int, int]:
        return self._plans[offset]


class MultiplicativeCirculantRouting(_CirculantDatelineRouting):
    """Analytic routing for multiplicative circulants ``C(s^2; 1, s)``.

    Writes the offset in balanced base ``s`` — ``offset ≡ a1*s + a0``
    with both digits near zero — and routes ``a1`` chord hops then
    ``a0`` ring steps (arXiv 1902.03314's digit scheme for ``k = 2``).
    Candidate digits come from rounding ``offset/s`` for the two
    balanced representatives of the offset, so the decomposition is
    O(1) per packet; ties break exactly as the table's search does,
    and minimality is property-tested against the BFS oracle.
    """

    def __init__(self, topology: CirculantTopology) -> None:
        if not topology.is_multiplicative:
            raise ValueError(
                f"multiplicative routing needs N == s^2, got "
                f"{topology.name} (N={topology.num_nodes}, "
                f"s={topology.skip})"
            )
        super().__init__(
            topology, f"circulant-mult/{topology.name}"
        )

    def decompose(self, offset: int) -> tuple[int, int]:
        n, s = self._n, self._skip
        best: tuple[tuple, int, int] | None = None
        for representative in (offset % n, offset % n - n):
            base = representative // s
            for chords in {0, base - 1, base, base + 1, base + 2}:
                if abs(chords) >= s:  # a full chord-cycle lap
                    continue
                steps = representative - chords * s
                cost = abs(chords) + abs(steps)
                key = (cost, abs(chords), chords < 0, steps < 0)
                if best is None or key < best[0]:
                    best = (key, chords, steps)
        assert best is not None
        return best[1], best[2]
