"""Dimension-order (XYZ) routing on the 3D mesh and torus.

The 2D arguments lift verbatim to three dimensions:

* **Mesh3D** — finish x (east/west), then y (south/north), then z
  (up/down).  Inter-dimension dependencies flow one way (x channels
  are never revisited after a y or z hop, y never after z), and
  within a dimension a mesh path is monotone, so the channel
  dependency graph is acyclic with a single virtual channel — exactly
  the XY proof with one more stage.
* **Torus3D** — each dimension is a ring handled like
  :mod:`repro.routing.torus`: shortest direction, promotion to VC 1
  on the hop crossing the dimension's wraparound edge, VC class reset
  when the packet turns into the next dimension.  X, y and z channels
  are disjoint resource sets, so each dimension's dateline argument
  applies independently and two VCs suffice for the whole scheme
  (``tests/routing/test_deadlock_freedom.py`` rebuilds the CDG and
  asserts acyclicity).

Both schemes are minimal; the BFS-oracle property suite
(``tests/routing/test_properties.py``) checks hop counts against
shortest-path distances over randomized sizes.  Note minimality is in
*hops*: with a TSV latency penalty the lowest-latency path is still
the same one, because every minimal path uses the identical number of
vertical hops (|Δz|).
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
)
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST
from repro.topology.mesh3d import (
    DOWN,
    UP,
    Mesh3DTopology,
    Torus3DTopology,
)

_DIM_KEY = "torus3d_dimension"

#: Per dimension: (axis name, forward port, backward port).  Forward
#: means the +1 coordinate direction.
_DIMENSIONS = (
    ("x", EAST, WEST),
    ("y", SOUTH, NORTH),
    ("z", UP, DOWN),
)


class Mesh3DXYZRouting(RoutingAlgorithm):
    """Deterministic x-then-y-then-z routing on a 3D mesh."""

    required_vcs = 1

    def __init__(self, topology: Mesh3DTopology) -> None:
        super().__init__(topology, f"xyz/{topology.name}")
        self._grid = topology

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, 0)
        position = self._grid.coordinates(node)
        target = self._grid.coordinates(packet.dst)
        for axis, (_, forward, backward) in enumerate(_DIMENSIONS):
            if position[axis] < target[axis]:
                return RouteDecision(forward, 0)
            if position[axis] > target[axis]:
                return RouteDecision(backward, 0)
        raise AssertionError("unreachable: node != dst")  # pragma: no cover


class Torus3DXYZRouting(RoutingAlgorithm):
    """Shortest-direction XYZ routing with per-dimension datelines."""

    required_vcs = 2

    def __init__(self, topology: Torus3DTopology) -> None:
        super().__init__(topology, f"torus-xyz/{topology.name}")
        self._grid = topology

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        position = self._grid.coordinates(node)
        target = self._grid.coordinates(packet.dst)
        sizes = self._grid.sizes
        for axis, (name, forward, backward) in enumerate(_DIMENSIONS):
            if position[axis] != target[axis]:
                return self._ring_hop(
                    packet,
                    name,
                    position[axis],
                    target[axis],
                    sizes[axis],
                    forward,
                    backward,
                )
        raise AssertionError("unreachable: node != dst")  # pragma: no cover

    def _ring_hop(
        self,
        packet: Packet,
        dimension: str,
        position: int,
        target: int,
        size: int,
        forward_port: str,
        backward_port: str,
    ) -> RouteDecision:
        # Entering a new dimension resets the dateline class: the
        # previous dimension's channels can never be revisited.
        if packet.route_state.get(_DIM_KEY) != dimension:
            packet.route_state[_DIM_KEY] = dimension
            packet.vc = 0
        forward = (target - position) % size
        if forward <= size - forward:
            port = forward_port
            # Moving forward wraps on the hop leaving the last
            # coordinate — that edge is the dimension's dateline.
            crossing = position == size - 1
        else:
            port = backward_port
            crossing = position == 0
        if crossing:
            packet.vc = 1
        return RouteDecision(port, packet.vc)
