"""Source routing: the whole route is computed at injection.

The paper lists "(adaptive, source, arithmetic or table-driven)
routing" as the design space.  :class:`SourceRouting` adapts any
deterministic per-hop algorithm into its source-routed form: the
first ``decide`` call at the source node walks the base algorithm to
the destination and stores the (port, vc) list on the packet; every
router along the way then just consumes the next entry — modelling a
router with no routing logic at all, only a shift register in the
head flit.

Routes (and therefore VC usage and deadlock behaviour) are identical
to the base algorithm's; what changes is where the decision happens.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
    RoutingError,
)

_ROUTE_KEY = "source_route"
_CURSOR_KEY = "source_route_cursor"


class SourceRouting(RoutingAlgorithm):
    """Wraps a per-hop algorithm into source-routed operation."""

    def __init__(self, base: RoutingAlgorithm) -> None:
        super().__init__(base.topology, f"source[{base.name}]")
        self.base = base
        self.required_vcs = base.required_vcs

    def _compute_route(
        self, node: int, packet: Packet
    ) -> list[tuple[str, int]]:
        """Walk the base algorithm from *node* to the destination."""
        probe = Packet(
            packet.src, packet.dst, packet.size_flits, packet.created_at
        )
        route = []
        current = node
        for _ in range(self.topology.num_nodes + 1):
            decision = self.base.decide(current, probe)
            if decision.is_local:
                return route
            route.append((decision.port, decision.vc))
            current = self.topology.out_ports(current)[decision.port]
        raise RoutingError(
            f"{self.name}: base algorithm loops from {node} to "
            f"{packet.dst}"
        )

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        route = packet.route_state.get(_ROUTE_KEY)
        if route is None:
            route = self._compute_route(node, packet)
            packet.route_state[_ROUTE_KEY] = route
            packet.route_state[_CURSOR_KEY] = 0
        cursor = packet.route_state[_CURSOR_KEY]
        if cursor >= len(route):
            raise RoutingError(
                f"{self.name}: route of packet {packet.packet_id} "
                f"exhausted before reaching {packet.dst}"
            )
        port, vc = route[cursor]
        packet.route_state[_CURSOR_KEY] = cursor + 1
        packet.vc = vc
        return RouteDecision(port, vc)
