"""Table-driven shortest-path routing.

Next hops are precomputed with BFS from every destination, breaking
ties toward the lowest-numbered neighbor, so routes are deterministic
and minimal on any connected topology.  This is

* the only general option for **irregular meshes**, where XY routing
  can hit missing cells, and
* the ablation baseline quantifying what the specialised schemes
  (across-first, shortest-direction) give up or gain.

Table routing makes no deadlock guarantee by itself (the paper's
specialised schemes carry that burden); it is intended for analysis
and for low-load irregular-mesh studies.
"""

from __future__ import annotations

from collections import deque

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
    RoutingError,
)
from repro.topology.base import Topology


def _next_hop_table(topology: Topology) -> list[list[int]]:
    """``table[dst][node]`` = neighbor of *node* on a shortest path to
    *dst* (-1 for ``node == dst``)."""
    n = topology.num_nodes
    neighbors = [sorted(topology.neighbors(node)) for node in range(n)]
    table = []
    for dst in range(n):
        next_hop = [-1] * n
        dist = [-1] * n
        dist[dst] = 0
        frontier = deque([dst])
        # BFS outward from the destination: the node we came from is
        # the next hop toward dst.
        while frontier:
            node = frontier.popleft()
            for neighbor in neighbors[node]:
                if dist[neighbor] == -1:
                    dist[neighbor] = dist[node] + 1
                    next_hop[neighbor] = node
                    frontier.append(neighbor)
        if any(d == -1 for d in dist):
            raise RoutingError(
                f"{topology.name}: not all nodes reach node {dst}"
            )
        table.append(next_hop)
    return table


class TableRouting(RoutingAlgorithm):
    """Precomputed minimal routing for arbitrary connected topologies."""

    required_vcs = 1
    # No turn restriction or dateline: cyclic channel dependencies
    # can close under load (see docs/deadlock.md).
    deadlock_free = False

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology, f"table/{topology.name}")
        self._table = _next_hop_table(topology)
        self._port_of = [
            {
                neighbor: port
                for port, neighbor in topology.out_ports(node).items()
            }
            for node in range(topology.num_nodes)
        ]

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, 0)
        neighbor = self._table[packet.dst][node]
        return RouteDecision(self._port_of[node][neighbor], 0)
