"""Dimension-order routing on the 2D torus, with per-dimension
datelines.

Like mesh XY routing, packets finish the X (column) dimension before
starting Y (rows), so inter-dimension dependencies flow one way.
Within each dimension the topology is a ring, handled exactly like
:mod:`repro.routing.ring`: shortest direction, and a promotion to
virtual channel 1 on the hop that crosses the dimension's wraparound
edge.  The VC class resets when the packet turns from X to Y — X and
Y channels are disjoint resource sets, so each dimension's dateline
argument applies independently and the scheme is deadlock-free with
two VCs.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
)
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST
from repro.topology.torus import TorusTopology

_DIM_KEY = "torus_dimension"


class TorusXYRouting(RoutingAlgorithm):
    """Shortest-direction dimension-order routing with dateline VCs."""

    required_vcs = 2

    def __init__(self, topology: TorusTopology) -> None:
        super().__init__(topology, f"torus-xy/{topology.name}")
        self._torus = topology

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        row, col = self._torus.coordinates(node)
        dst_row, dst_col = self._torus.coordinates(packet.dst)
        if col != dst_col:
            return self._ring_hop(
                packet, "x", col, dst_col, self._torus.cols, EAST, WEST
            )
        # "Forward" in the row dimension is south (row + 1).
        return self._ring_hop(
            packet, "y", row, dst_row, self._torus.rows, SOUTH, NORTH
        )

    def _ring_hop(
        self,
        packet: Packet,
        dimension: str,
        position: int,
        target: int,
        size: int,
        forward_port: str,
        backward_port: str,
    ) -> RouteDecision:
        # Entering a new dimension resets the dateline class: the
        # previous dimension's channels can never be revisited.
        if packet.route_state.get(_DIM_KEY) != dimension:
            packet.route_state[_DIM_KEY] = dimension
            packet.vc = 0
        forward = (target - position) % size
        if forward <= size - forward:
            port = forward_port
            # Moving forward wraps on the hop leaving the last
            # coordinate — that edge is the dimension's dateline.
            crossing = position == size - 1
        else:
            port = backward_port
            crossing = position == 0
        if crossing:
            packet.vc = 1
        return RouteDecision(port, packet.vc)
