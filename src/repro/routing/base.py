"""Routing abstractions.

A routing algorithm maps ``(current node, packet)`` to a
:class:`RouteDecision` — an output-port name plus the virtual channel
the packet must use on that port.  Algorithms may keep per-packet
state in ``packet.route_state`` (e.g. the ring direction, locked in at
the first decision and maintained afterwards, as the paper requires).

``LOCAL_PORT`` is the pseudo-port for ejection to the local IP.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.noc.packet import Packet
from repro.topology.base import Topology

LOCAL_PORT = "local"


class RoutingError(RuntimeError):
    """Raised when an algorithm cannot produce a legal next hop."""


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """Output port and virtual channel chosen for a packet's next hop."""

    port: str
    vc: int = 0

    @property
    def is_local(self) -> bool:
        """True when the packet has reached its destination node."""
        return self.port == LOCAL_PORT


class RoutingAlgorithm(ABC):
    """Base class for deterministic per-hop routing.

    Attributes:
        topology: The topology the algorithm routes on.
    """

    #: Virtual channels the algorithm needs per link (subclasses with
    #: dateline disciplines override to 2).
    required_vcs = 1

    #: Whether the algorithm guarantees deadlock freedom by
    #: construction (dateline VC discipline, dimension order, ...).
    #: Fully adaptive schemes set this False: their safety must come
    #: from the runtime instead — pair them with a
    #: :class:`~repro.resilience.drain.DrainController` (recovery) or
    #: accept that a :class:`~repro.resilience.StallWatchdog` merely
    #: truncates a wedged run.
    deadlock_free = True

    #: Whether the algorithm chooses among several legal next hops at
    #: run time (congestion-aware).  Adaptive algorithms natively
    #: detour around failed links via :meth:`on_fault_update`, which
    #: is why the network skips the BFS fallback-table installation
    #: for them (see docs/resilience.md).
    adaptive = False

    def __init__(self, topology: Topology, name: str) -> None:
        self.topology = topology
        self.name = name

    def bind_network(self, network) -> None:
        """Give the algorithm access to live router state.

        Called once by :class:`~repro.noc.network.Network` after the
        model is wired.  The default is a no-op; adaptive algorithms
        keep the reference so :meth:`decide` can score candidate
        output ports by their current queue occupancy and credits.
        """

    def on_fault_update(self, dead_links) -> None:
        """React to the set of failed physical connections changing.

        Called by :meth:`~repro.noc.network.Network.fail_link` /
        ``repair_link`` with the complete current set of dead
        ``(low, high)`` node pairs.  The default is a no-op (static
        algorithms rely on the network's fallback table); adaptive
        algorithms recompute their distance tables over the residual
        graph so detours come out of the normal decision process.
        """

    @abstractmethod
    def decide(self, node: int, packet: Packet) -> RouteDecision:
        """Choose the next hop for *packet* standing at *node*.

        Must return ``RouteDecision(LOCAL_PORT)`` when
        ``node == packet.dst``.  Implementations may mutate
        ``packet.route_state`` and ``packet.vc``.
        """

    def path(self, src: int, dst: int, size_flits: int = 1) -> list[int]:
        """The node sequence a packet would take from *src* to *dst*.

        A convenience for tests and analysis: walks the algorithm hop
        by hop on a throwaway packet.

        Raises:
            RoutingError: if the walk does not terminate within
                ``num_nodes`` hops (a routing loop).
        """
        self.topology.check_node(src)
        self.topology.check_node(dst)
        if src == dst:
            return [src]
        packet = Packet(src, dst, size_flits, created_at=0)
        nodes = [src]
        current = src
        for _ in range(self.topology.num_nodes + 1):
            decision = self.decide(current, packet)
            if decision.is_local:
                return nodes
            current = self.topology.out_ports(current)[decision.port]
            nodes.append(current)
        raise RoutingError(
            f"{self.name}: routing loop from {src} to {dst}: {nodes}"
        )

    def path_length(self, src: int, dst: int) -> int:
        """Number of links the algorithm's route traverses."""
        return len(self.path(src, dst)) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.topology.name})"
