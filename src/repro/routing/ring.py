"""Shortest-direction routing on the Ring, with dateline VCs.

"In Ring-based NoC the routing strategy is straightforward: clockwise
or counterclockwise direction is taken from the source to the target
node, depending on the shortest path direction."

Deadlock avoidance uses the classic dateline discipline on each ring
direction: packets start on virtual channel 0 and move to virtual
channel 1 on (and after) the hop that crosses the dateline — the
``N-1 -> 0`` edge clockwise, the ``0 -> N-1`` edge counterclockwise.
Because minimal routes never wrap around the whole ring, the channel
dependency graph per VC is acyclic, which is what the paper's "pair of
output buffers ... used for deadlock avoidance" provides.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
)
from repro.topology.ring import CLOCKWISE, COUNTERCLOCKWISE, RingTopology

_DIRECTION_KEY = "ring_direction"


def shortest_ring_direction(num_nodes: int, src: int, dst: int) -> str:
    """``"cw"`` or ``"ccw"``, whichever reaches *dst* in fewer hops.

    Clockwise wins exact ties, making the choice deterministic.
    """
    clockwise = (dst - src) % num_nodes
    if clockwise <= num_nodes - clockwise:
        return CLOCKWISE
    return COUNTERCLOCKWISE


def dateline_vc(
    num_nodes: int, node: int, direction: str, packet: Packet
) -> int:
    """Virtual channel for the next ring hop under the dateline rule.

    Promotes ``packet.vc`` to 1 when the hop crosses the dateline of
    its direction; once promoted, the packet stays on VC 1.
    """
    crossing = (direction == CLOCKWISE and node == num_nodes - 1) or (
        direction == COUNTERCLOCKWISE and node == 0
    )
    if crossing:
        packet.vc = 1
    return packet.vc


class RingShortestRouting(RoutingAlgorithm):
    """The paper's Ring routing: pick the shorter direction, keep it."""

    required_vcs = 2

    def __init__(self, topology: RingTopology) -> None:
        super().__init__(topology, f"ring-shortest/{topology.name}")
        self._num_nodes = topology.num_nodes

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        direction = packet.route_state.get(_DIRECTION_KEY)
        if direction is None:
            direction = shortest_ring_direction(
                self._num_nodes, node, packet.dst
            )
            packet.route_state[_DIRECTION_KEY] = direction
        vc = dateline_vc(self._num_nodes, node, direction, packet)
        return RouteDecision(direction, vc)
