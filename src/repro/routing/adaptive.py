"""O1TURN routing on regular meshes: randomised XY/YX per packet.

An "adaptive-lite" scheme from the literature (Seo et al., ISCA 2005)
covering the paper's "analysis of routing protocols" future work:
each packet picks XY or YX dimension order at the source — XY packets
travel on virtual channel 0, YX packets on virtual channel 1, which
keeps the two turn-models on disjoint channel sets and preserves
deadlock freedom while spreading load across both route families.

The choice is derived deterministically from the packet id, so runs
stay reproducible without threading an RNG into the routing layer.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
    RoutingError,
)
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST, MeshTopology

_ORDER_KEY = "o1turn_order"


class MeshO1TurnRouting(RoutingAlgorithm):
    """Per-packet randomised dimension order with per-order VCs."""

    required_vcs = 2

    def __init__(self, topology: MeshTopology) -> None:
        if not topology.is_regular:
            raise RoutingError(
                f"O1TURN requires a regular mesh, got {topology.name}"
            )
        super().__init__(topology, f"o1turn/{topology.name}")
        self._mesh = topology

    @staticmethod
    def _order_for(packet: Packet) -> str:
        order = packet.route_state.get(_ORDER_KEY)
        if order is None:
            # Full splitmix64 finalizer over the packet id: cheap,
            # deterministic, and decorrelates the low bit from
            # consecutive ids (a partial scramble leaves runs of one
            # parity).
            mask = 2**64 - 1
            z = (packet.packet_id + 0x9E3779B97F4A7C15) & mask
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
            z ^= z >> 31
            order = "xy" if z & 1 == 0 else "yx"
            packet.route_state[_ORDER_KEY] = order
        return order

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        order = self._order_for(packet)
        vc = 0 if order == "xy" else 1
        packet.vc = vc
        row, col = self._mesh.coordinates(node)
        dst_row, dst_col = self._mesh.coordinates(packet.dst)
        if order == "xy":
            moves = ((col, dst_col, EAST, WEST), (row, dst_row, SOUTH, NORTH))
        else:
            moves = ((row, dst_row, SOUTH, NORTH), (col, dst_col, EAST, WEST))
        for position, target, forward, backward in moves:
            if position < target:
                return RouteDecision(forward, vc)
            if position > target:
                return RouteDecision(backward, vc)
        raise RoutingError(
            f"{self.name}: no move from {node} to {packet.dst}"
        )  # pragma: no cover - unreachable, dst checked above
