"""Adaptive routing: O1TURN, minimal-adaptive and bounded misrouting.

Three schemes covering the paper's "analysis of routing protocols"
future work, in increasing order of freedom:

* :class:`MeshO1TurnRouting` — "adaptive-lite" (Seo et al., ISCA
  2005): each packet picks XY or YX dimension order at the source on
  disjoint VC sets, preserving deadlock freedom while spreading load.
* :class:`MinimalAdaptiveRouting` — topology-generic fully adaptive
  minimal routing over BFS distance tables: at every hop the packet
  may take *any* alive output port that decreases the (residual)
  distance to its destination, scored by live output-queue occupancy,
  with free-VC selection on the chosen port.  **Not deadlock-free**:
  no turn restriction or dateline applies, so cyclic channel
  dependencies can and do close under load — pair it with a
  :class:`~repro.resilience.drain.DrainController` for recovery
  (docs/deadlock.md).
* :class:`MisrouteAdaptiveRouting` — the same, plus a bounded number
  of productive misroutes: when every minimal port is congested the
  packet may step sideways (never through a dead port, never more
  than ``max_misroutes`` times), trading hops for spatial spread.

The adaptive schemes recompute their distance tables over the
residual graph on fault transitions (:meth:`on_fault_update`), which
is how they subsume the BFS fallback-table detours of PR 3.  All
decisions are deterministic functions of the simulation state, so
runs stay byte-reproducible.
"""

from __future__ import annotations

from collections import deque

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
    RoutingError,
)
from repro.topology.base import Topology
from repro.topology.mesh import EAST, NORTH, SOUTH, WEST, MeshTopology

_ORDER_KEY = "o1turn_order"
_MISROUTE_KEY = "misroutes"

#: Sentinel distance for unreachable nodes (residual graph cuts).
_INF = float("inf")


class MeshO1TurnRouting(RoutingAlgorithm):
    """Per-packet randomised dimension order with per-order VCs."""

    required_vcs = 2

    def __init__(self, topology: MeshTopology) -> None:
        if not topology.is_regular:
            raise RoutingError(
                f"O1TURN requires a regular mesh, got {topology.name}"
            )
        super().__init__(topology, f"o1turn/{topology.name}")
        self._mesh = topology

    @staticmethod
    def _order_for(packet: Packet) -> str:
        order = packet.route_state.get(_ORDER_KEY)
        if order is None:
            # Full splitmix64 finalizer over the packet id: cheap,
            # deterministic, and decorrelates the low bit from
            # consecutive ids (a partial scramble leaves runs of one
            # parity).
            mask = 2**64 - 1
            z = (packet.packet_id + 0x9E3779B97F4A7C15) & mask
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
            z ^= z >> 31
            order = "xy" if z & 1 == 0 else "yx"
            packet.route_state[_ORDER_KEY] = order
        return order

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        order = self._order_for(packet)
        vc = 0 if order == "xy" else 1
        packet.vc = vc
        row, col = self._mesh.coordinates(node)
        dst_row, dst_col = self._mesh.coordinates(packet.dst)
        if order == "xy":
            moves = ((col, dst_col, EAST, WEST), (row, dst_row, SOUTH, NORTH))
        else:
            moves = ((row, dst_row, SOUTH, NORTH), (col, dst_col, EAST, WEST))
        for position, target, forward, backward in moves:
            if position < target:
                return RouteDecision(forward, vc)
            if position > target:
                return RouteDecision(backward, vc)
        raise RoutingError(
            f"{self.name}: no move from {node} to {packet.dst}"
        )  # pragma: no cover - unreachable, dst checked above


class MinimalAdaptiveRouting(RoutingAlgorithm):
    """Fully adaptive minimal routing with free-VC selection.

    Works on any topology: next hops are the alive neighbours that
    strictly decrease the BFS distance to the destination.  When the
    owning network has bound itself (:meth:`bind_network`), ties are
    broken by live output-port occupancy — least congested first —
    and the virtual channel with the most downstream credits is
    chosen; unbound (``path()`` walks, analysis), the first candidate
    in port-name order wins, so offline paths are still minimal and
    deterministic.

    Deadlock freedom is explicitly **not** provided
    (``deadlock_free = False``); see the module docstring.
    """

    required_vcs = 2
    deadlock_free = False
    adaptive = True

    def __init__(self, topology: Topology, name: str | None = None) -> None:
        super().__init__(
            topology, name or f"adaptive/{topology.name}"
        )
        self._ports: list[list[tuple[str, int]]] = [
            sorted(topology.out_ports(node).items())
            for node in range(topology.num_nodes)
        ]
        self._network = None
        self._dead_ports: list[frozenset[str]] = [
            frozenset() for _ in range(topology.num_nodes)
        ]
        self._healthy_dist = self._distance_table(frozenset())
        self._dist = self._healthy_dist

    # -- tables ---------------------------------------------------------

    def _distance_table(
        self, dead_links: frozenset[tuple[int, int]]
    ) -> list[list[float]]:
        """``table[node][dst]`` = residual BFS distance (``_INF`` when
        unreachable)."""
        n = self.topology.num_nodes
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for node in range(n):
            for _, peer in self._ports[node]:
                low, high = (node, peer) if node <= peer else (peer, node)
                if (low, high) not in dead_links:
                    adjacency[node].append(peer)
        table: list[list[float]] = [[_INF] * n for _ in range(n)]
        for dst in range(n):
            # BFS from the destination over reversed edges; links are
            # bidirectional here so the adjacency works both ways.
            dist_to = table[dst]
            dist_to[dst] = 0
            frontier = deque([dst])
            while frontier:
                here = frontier.popleft()
                step = dist_to[here] + 1
                for peer in adjacency[here]:
                    if dist_to[peer] is _INF or dist_to[peer] > step:
                        dist_to[peer] = step
                        frontier.append(peer)
        # Transpose into [node][dst] orientation.
        return [
            [table[dst][node] for dst in range(n)] for node in range(n)
        ]

    def bind_network(self, network) -> None:
        self._network = network

    @property
    def fully_connected(self) -> bool:
        """Whether every pair is still reachable in the residual
        graph (the fault records' ``residual_connected`` field)."""
        return all(
            d is not _INF for row in self._dist for d in row
        )

    def on_fault_update(self, dead_links) -> None:
        from repro.resilience.fallback import normalise_link

        dead = frozenset(normalise_link(pair) for pair in dead_links)
        self._dist = (
            self._healthy_dist
            if not dead
            else self._distance_table(dead)
        )
        self._dead_ports = [
            frozenset(
                port
                for port, peer in self._ports[node]
                if (min(node, peer), max(node, peer)) in dead
            )
            for node in range(self.topology.num_nodes)
        ]

    # -- decision -------------------------------------------------------

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        candidates = self._minimal_ports(node, packet.dst)
        if not candidates:
            # Destination unreachable in the residual graph: follow
            # the healthy-graph gradient so the packet funnels into a
            # dead port, where the router's kill path accounts for it.
            dist = self._healthy_dist
            base = dist[node][packet.dst]
            for port, peer in self._ports[node]:
                if dist[peer][packet.dst] == base - 1:
                    return RouteDecision(port, 0)
            raise RoutingError(
                f"{self.name}: no move from {node} to {packet.dst}"
            )  # pragma: no cover - healthy graphs are connected
        port = self._choose_port(node, packet, candidates)
        vc = self._choose_vc(node, port, packet)
        packet.vc = vc
        return RouteDecision(port, vc)

    def _minimal_ports(self, node: int, dst: int) -> list[str]:
        """Alive ports that strictly decrease the residual distance."""
        dist = self._dist
        base = dist[node][dst]
        if base is _INF:
            return []
        dead = self._dead_ports[node]
        return [
            port
            for port, peer in self._ports[node]
            if port not in dead and dist[peer][dst] == base - 1
        ]

    def _choose_port(
        self, node: int, packet: Packet, candidates: list[str]
    ) -> str:
        if len(candidates) == 1 or self._network is None:
            return candidates[0]
        router = self._network.routers[node]
        # Least buffered flits on the output port wins; port-name
        # order breaks ties, keeping the choice deterministic.
        return min(
            candidates,
            key=lambda port: (router.output_occupancy(port), port),
        )

    def _choose_vc(self, node: int, port: str, packet: Packet) -> int:
        """Free-VC selection: most downstream credits, then emptiest
        queue, then lowest index."""
        if self._network is None:
            return 0
        router = self._network.routers[node]
        return min(
            range(router.num_vcs),
            key=lambda vc: (
                -router.credits_for(port, vc),
                router.output_occupancy(port, vc),
                vc,
            ),
        )


class MisrouteAdaptiveRouting(MinimalAdaptiveRouting):
    """Minimal-adaptive plus bounded productive misrouting.

    When every minimal candidate's output port is occupied and some
    alive non-minimal port is idle, the packet steps sideways instead
    of queueing — at most *max_misroutes* times over its lifetime
    (tracked in ``packet.route_state``), so paths stay within
    ``minimal + max_misroutes`` hops and livelock is bounded.
    Unbound (no network), it degenerates to minimal-adaptive.
    """

    def __init__(
        self,
        topology: Topology,
        max_misroutes: int = 2,
        name: str | None = None,
    ) -> None:
        if max_misroutes < 0:
            raise ValueError(
                f"max_misroutes must be >= 0, got {max_misroutes}"
            )
        super().__init__(
            topology,
            name or f"adaptive-misroute/{topology.name}",
        )
        self.max_misroutes = max_misroutes

    def _choose_port(
        self, node: int, packet: Packet, candidates: list[str]
    ) -> str:
        best = super()._choose_port(node, packet, candidates)
        if self._network is None:
            return best
        router = self._network.routers[node]
        if router.output_occupancy(best) == 0:
            return best
        used = packet.route_state.get(_MISROUTE_KEY, 0)
        if used >= self.max_misroutes:
            return best
        dist = self._dist
        dst = packet.dst
        dead = self._dead_ports[node]
        detours = [
            (dist[peer][dst], port)
            for port, peer in self._ports[node]
            if port not in dead
            and port not in candidates
            and dist[peer][dst] is not _INF
            and router.output_occupancy(port) == 0
        ]
        if not detours:
            return best
        _, port = min(detours)
        packet.route_state[_MISROUTE_KEY] = used + 1
        return port
