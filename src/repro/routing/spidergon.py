"""The paper's Across-first routing on the Spidergon.

"First, if the target node for a packet is at distance D > N/4 on the
external ring (that is, in the opposite half of the Spidergon external
ring) then the across link is traversed first, to reach the opposite
node.  Second, clockwise or counterclockwise direction is taken and
maintained, depending on the target's position."

After the across hop the remaining ring distance is at most
``ceil(N/4)``, so the across link is never taken twice; the decision
can therefore be made statelessly from the current node.  Ring travel
reuses the dateline virtual-channel discipline
(:func:`repro.routing.ring.dateline_vc`); across hops always use
VC 0 — across channels only ever feed ring channels, never another
across channel, so they add no cyclic dependency.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
)
from repro.routing.ring import dateline_vc, shortest_ring_direction
from repro.topology.spidergon import ACROSS, SpidergonTopology

_DIRECTION_KEY = "ring_direction"


class SpidergonAcrossFirstRouting(RoutingAlgorithm):
    """Across-first deterministic routing (paper Section 2)."""

    required_vcs = 2

    def __init__(self, topology: SpidergonTopology) -> None:
        super().__init__(topology, f"across-first/{topology.name}")
        self._num_nodes = topology.num_nodes
        self._quarter = topology.num_nodes / 4

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        if node == packet.dst:
            return RouteDecision(LOCAL_PORT, packet.vc)
        clockwise = (packet.dst - node) % self._num_nodes
        ring_distance = min(clockwise, self._num_nodes - clockwise)
        if ring_distance > self._quarter:
            return RouteDecision(ACROSS, 0)
        direction = packet.route_state.get(_DIRECTION_KEY)
        if direction is None:
            direction = shortest_ring_direction(
                self._num_nodes, node, packet.dst
            )
            packet.route_state[_DIRECTION_KEY] = direction
        vc = dateline_vc(self._num_nodes, node, direction, packet)
        return RouteDecision(direction, vc)
