"""E-cube (dimension-order) routing on the hypercube.

Correct the address bits from the lowest dimension upward: at node
``n`` with destination ``d``, route on the lowest set bit of
``n XOR d``.  Strictly ascending dimension order makes the channel
dependency graph acyclic, so e-cube is deadlock-free with a single
virtual channel — and minimal, since every hop fixes one differing
bit.
"""

from __future__ import annotations

from repro.noc.packet import Packet
from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
)
from repro.topology.hypercube import HypercubeTopology


class HypercubeEcubeRouting(RoutingAlgorithm):
    """Lowest-differing-bit-first deterministic routing."""

    required_vcs = 1

    def __init__(self, topology: HypercubeTopology) -> None:
        super().__init__(topology, f"ecube/{topology.name}")

    def decide(self, node: int, packet: Packet) -> RouteDecision:
        difference = node ^ packet.dst
        if difference == 0:
            return RouteDecision(LOCAL_PORT, 0)
        lowest = (difference & -difference).bit_length() - 1
        return RouteDecision(f"dim{lowest}", 0)
