"""Routing algorithms for the paper's topologies.

* :class:`~repro.routing.ring.RingShortestRouting` — clockwise or
  counterclockwise, whichever is shorter, direction maintained.
* :class:`~repro.routing.spidergon.SpidergonAcrossFirstRouting` — the
  paper's Across-first scheme: take the across link when the target is
  more than N/4 away on the external ring, then stay on one ring
  direction.
* :class:`~repro.routing.mesh.MeshXYRouting` — dimension-order: X to
  the target column, then Y to the target row.
* :class:`~repro.routing.table.TableRouting` — generic precomputed
  shortest-path next hops; works on any topology (including irregular
  meshes) and serves as the ablation baseline for the specialised
  schemes.
* :class:`~repro.routing.mesh3d.Mesh3DXYZRouting` /
  :class:`~repro.routing.mesh3d.Torus3DXYZRouting` — dimension-order
  XYZ on the 3D mesh and torus (per-dimension datelines on the
  torus), deadlock-free by dimension ordering.
* :class:`~repro.routing.circulant.CirculantTableRouting` /
  :class:`~repro.routing.circulant.MultiplicativeCirculantRouting` —
  minimal two-phase (chords, then ring steps) routing on circulant
  rings ``C(N; 1, s)``, deadlock-free via per-chord-cycle datelines;
  the multiplicative variant is the analytic digit scheme for
  ``N = s^2`` (arXiv 1902.03314).

The ring-based schemes use a two-virtual-channel dateline discipline
for deadlock freedom, matching the paper's "pair of output buffers ...
used both for virtual channel management and deadlock avoidance".
"""

from repro.routing.base import (
    LOCAL_PORT,
    RouteDecision,
    RoutingAlgorithm,
    RoutingError,
)
from repro.routing.adaptive import (
    MeshO1TurnRouting,
    MinimalAdaptiveRouting,
    MisrouteAdaptiveRouting,
)
from repro.routing.circulant import (
    CirculantTableRouting,
    MultiplicativeCirculantRouting,
)
from repro.routing.hypercube import HypercubeEcubeRouting
from repro.routing.mesh import MeshXYRouting
from repro.routing.mesh3d import Mesh3DXYZRouting, Torus3DXYZRouting
from repro.routing.ring import RingShortestRouting
from repro.routing.source import SourceRouting
from repro.routing.spidergon import SpidergonAcrossFirstRouting
from repro.routing.table import TableRouting
from repro.routing.torus import TorusXYRouting


def routing_for(topology) -> RoutingAlgorithm:
    """The paper's routing scheme for *topology*.

    Ring -> shortest direction, Spidergon -> across-first, regular
    Mesh -> XY; anything else (e.g. irregular meshes) falls back to
    table-driven shortest paths.
    """
    from repro.topology import (
        MeshTopology,
        RingTopology,
        SpidergonTopology,
    )
    from repro.topology.circulant import CirculantTopology
    from repro.topology.hypercube import HypercubeTopology
    from repro.topology.mesh3d import Mesh3DTopology, Torus3DTopology
    from repro.topology.torus import TorusTopology

    if isinstance(topology, Torus3DTopology):
        return Torus3DXYZRouting(topology)
    if isinstance(topology, Mesh3DTopology):
        return Mesh3DXYZRouting(topology)
    if isinstance(topology, CirculantTopology):
        return CirculantTableRouting(topology)
    if isinstance(topology, HypercubeTopology):
        return HypercubeEcubeRouting(topology)
    if isinstance(topology, SpidergonTopology):
        return SpidergonAcrossFirstRouting(topology)
    if isinstance(topology, RingTopology):
        return RingShortestRouting(topology)
    if isinstance(topology, TorusTopology):
        return TorusXYRouting(topology)
    if isinstance(topology, MeshTopology) and topology.is_regular:
        return MeshXYRouting(topology)
    return TableRouting(topology)


__all__ = [
    "CirculantTableRouting",
    "HypercubeEcubeRouting",
    "MultiplicativeCirculantRouting",
    "LOCAL_PORT",
    "Mesh3DXYZRouting",
    "MeshXYRouting",
    "RingShortestRouting",
    "Torus3DXYZRouting",
    "RouteDecision",
    "RoutingAlgorithm",
    "RoutingError",
    "MeshO1TurnRouting",
    "MinimalAdaptiveRouting",
    "MisrouteAdaptiveRouting",
    "SourceRouting",
    "SpidergonAcrossFirstRouting",
    "TableRouting",
    "TorusXYRouting",
    "routing_for",
]
