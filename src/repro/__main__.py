"""Top-level command-line interface.

::

    python -m repro info                 # library and paper summary
    python -m repro figures fig10 ...    # == repro.experiments.figures
    python -m repro ablations vcs ...    # == repro.experiments.ablations
"""

from __future__ import annotations

import sys


def _info() -> int:
    from repro import __version__
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.ablations import ALL_ABLATIONS

    print(f"repro {__version__}")
    print(
        "Reproduction of Bononi & Concer, 'Simulation and Analysis "
        "of Network on Chip\nArchitectures: Ring, Spidergon and 2D "
        "Mesh', DATE 2006."
    )
    print()
    print("figures:  ", " ".join(sorted(ALL_FIGURES)))
    print("ablations:", " ".join(sorted(ALL_ABLATIONS)))
    print()
    print(
        "usage: python -m repro "
        "{info|figures|ablations|campaign SPEC.json OUT.csv} [args...]"
    )
    return 0


def _campaign(rest: list[str]) -> int:
    import pathlib

    from repro.experiments.campaign import Campaign

    if len(rest) != 2:
        print("usage: python -m repro campaign SPEC.json OUT.csv")
        return 2
    spec_path, csv_path = rest
    campaign = Campaign.from_json(pathlib.Path(spec_path).read_text())
    results = campaign.execute(
        csv_path,
        progress=lambda done, total, key: print(
            f"[{done}/{total}] {key}"
        ),
    )
    print(f"{len(results)} runs executed; results in {csv_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("info", "-h", "--help"):
        return _info()
    command, rest = argv[0], argv[1:]
    if command == "figures":
        from repro.experiments.figures import main as figures_main

        return figures_main(rest)
    if command == "ablations":
        from repro.experiments.ablations import main as ablations_main

        return ablations_main(rest)
    if command == "campaign":
        return _campaign(rest)
    print(f"unknown command {command!r}; try: python -m repro info")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
