"""Top-level command-line interface.

::

    python -m repro info                 # library and paper summary
    python -m repro figures fig10 ...    # == repro.experiments.figures
    python -m repro ablations vcs ...    # == repro.experiments.ablations
"""

from __future__ import annotations

import sys


def _info() -> int:
    from repro import __version__
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.ablations import ALL_ABLATIONS

    print(f"repro {__version__}")
    print(
        "Reproduction of Bononi & Concer, 'Simulation and Analysis "
        "of Network on Chip\nArchitectures: Ring, Spidergon and 2D "
        "Mesh', DATE 2006."
    )
    print()
    print("figures:  ", " ".join(sorted(ALL_FIGURES)))
    print("ablations:", " ".join(sorted(ALL_ABLATIONS)))
    print()
    print(
        "usage: python -m repro "
        "{info|figures|ablations|campaign SPEC.json OUT.csv} [args...]\n"
        "       (figures and campaign accept --workers N; campaign "
        "also --no-cache, --cache-dir DIR)"
    )
    return 0


def _campaign(rest: list[str]) -> int:
    import argparse
    import pathlib

    from repro.experiments.campaign import Campaign
    from repro.experiments.report import format_execution_summary

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a sweep campaign described by a JSON spec.",
    )
    parser.add_argument("spec", help="campaign spec (JSON file)")
    parser.add_argument("csv", help="output CSV (appended, resumable)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1); any value produces "
        "identical rows because seeds derive from sweep coordinates",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not consult or fill the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: .repro-cache next to "
        "the CSV)",
    )
    try:
        args = parser.parse_args(rest)
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
    except SystemExit as exc:
        return int(exc.code or 0)
    campaign = Campaign.from_json(pathlib.Path(args.spec).read_text())
    try:
        campaign.validate()
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    results = campaign.execute(
        args.csv,
        progress=lambda done, total, key: print(
            f"[{done}/{total}] {key}"
        ),
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    print(f"{len(results)} runs executed; results in {args.csv}")
    if campaign.last_stats is not None:
        print(format_execution_summary(campaign.last_stats))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("info", "-h", "--help"):
        return _info()
    command, rest = argv[0], argv[1:]
    if command == "figures":
        from repro.experiments.figures import main as figures_main

        return figures_main(rest)
    if command == "ablations":
        from repro.experiments.ablations import main as ablations_main

        return ablations_main(rest)
    if command == "campaign":
        return _campaign(rest)
    print(f"unknown command {command!r}; try: python -m repro info")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
