"""Top-level command-line interface.

::

    python -m repro info                 # library and paper summary
    python -m repro figures fig10 ...    # == repro.experiments.figures
    python -m repro ablations vcs ...    # == repro.experiments.ablations
    python -m repro campaign SPEC CSV    # declarative sweep
    python -m repro circulant 16         # equal-cost chord study
    python -m repro mesh3d               # 2D vs 3D TSV stacking study
    python -m repro topologies           # registered topology specs
    python -m repro engines              # registered simulation engines
    python -m repro routings             # registered routing suffixes
    python -m repro drain                # avoidance-vs-recovery study
    python -m repro trace ring16 hotspot:0 0.1   # JSONL observability
    python -m repro chaos mesh4x4 uniform 0.1 --fail 5:6@2000
    python -m repro serve --port 8642    # campaign-as-a-service
    python -m repro submit SPEC.json     # stream a campaign to it
"""

from __future__ import annotations

import sys


def _info() -> int:
    from repro import __version__
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.ablations import ALL_ABLATIONS

    print(f"repro {__version__}")
    print(
        "Reproduction of Bononi & Concer, 'Simulation and Analysis "
        "of Network on Chip\nArchitectures: Ring, Spidergon and 2D "
        "Mesh', DATE 2006."
    )
    print()
    print("figures:  ", " ".join(sorted(ALL_FIGURES)))
    print("ablations:", " ".join(sorted(ALL_ABLATIONS)))
    print()
    print(
        "usage: python -m repro "
        "{info|figures|ablations|campaign SPEC.json OUT.csv"
        "|circulant [N]|mesh3d [SIDE]|topologies|engines|routings"
        "|drain|trace TOPOLOGY PATTERN RATE"
        "|chaos TOPOLOGY PATTERN RATE"
        "|serve|submit SPEC.json} [args...]\n"
        "       (figures and campaign accept --workers N; campaign "
        "also --no-cache, --cache-dir DIR,\n"
        "        --timeout S, --retries N, --resume; trace accepts "
        "--cycles, --warmup, --seed,\n"
        "        --window, --out, --limit, --no-flits; chaos accepts "
        "--fail SRC:DST@T[:REPAIR_T],\n"
        "        --random-faults N@T, --stall N, --audit N, --json "
        "FILE; serve accepts --host,\n"
        "        --port, --workers, --store DIR, --timeout, "
        "--retries; submit accepts --host,\n"
        "        --port, --wait S, --out FILE, --quiet)"
    )
    return 0


def _serve(rest: list[str]) -> int:
    import argparse
    import asyncio

    from repro.serve.jobs import JobManager
    from repro.serve.server import CampaignServer
    from repro.serve.store import ResultStore

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve campaign simulations over HTTP: clients "
        "POST campaign spec JSON to /campaign and get streamed "
        "per-point progress; results dedupe through a "
        "content-addressed store plus in-flight coalescing, so "
        "repeated submissions cost one simulation.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (0 picks a free one; the chosen port is "
        "printed on startup)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="persistent worker processes (default 2)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=".repro-store",
        help="content-addressed result store directory (default "
        ".repro-store; compatible with campaign .repro-cache "
        "directories)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock deadline in seconds",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts per crashed / failed point (default 0)",
    )
    try:
        args = parser.parse_args(rest)
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        if args.timeout is not None and args.timeout <= 0:
            parser.error(f"--timeout must be > 0, got {args.timeout}")
        if args.retries < 0:
            parser.error(f"--retries must be >= 0, got {args.retries}")
    except SystemExit as exc:
        return int(exc.code or 0)

    jobs = JobManager(
        ResultStore(args.store),
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
    )
    server = CampaignServer(jobs, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(workers={args.workers}, store={args.store})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _submit(rest: list[str]) -> int:
    import argparse
    import json as _json
    import pathlib
    import sys as _sys

    from repro.serve.client import ServeClient, ServerError

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a campaign spec to a running campaign "
        "server and stream per-point progress.",
    )
    parser.add_argument("spec", help="campaign spec (JSON file)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument(
        "--wait",
        type=float,
        default=0.0,
        metavar="S",
        help="poll /healthz for up to S seconds before submitting "
        "(for scripts that just started the server)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also append every streamed JSONL line here (the "
        "per-point lines form a loadable campaign manifest)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the final summary line",
    )
    try:
        args = parser.parse_args(rest)
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        spec = _json.loads(pathlib.Path(args.spec).read_text())
    except (OSError, _json.JSONDecodeError) as exc:
        print(f"error: cannot read spec: {exc}", file=_sys.stderr)
        return 2
    client = ServeClient(args.host, args.port)
    try:
        if args.wait > 0:
            client.wait_until_ready(args.wait)
    except TimeoutError as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 2

    out_handle = None
    if args.out is not None:
        out_handle = pathlib.Path(args.out).open("a")
    summary = None
    done = 0
    try:
        for entry in client.submit(spec):
            if out_handle is not None:
                out_handle.write(_json.dumps(entry) + "\n")
                out_handle.flush()
            if entry.get("type") == "summary":
                summary = entry
                continue
            done += 1
            if not args.quiet:
                label = (
                    f"{entry['topology']}|{entry['pattern']}"
                    f"|{entry['rate']:.6g}"
                )
                status = entry["status"]
                if status != "ok":
                    status = f"{status}({entry.get('error', '?')})"
                print(
                    f"[{done}] {label} {entry['source']} {status}"
                )
    except (ConnectionError, OSError, ServerError) as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 2
    finally:
        if out_handle is not None:
            out_handle.close()
    if summary is None:
        print("error: stream ended without a summary", file=_sys.stderr)
        return 2
    print(
        f"{summary['points']} points: {summary['store_hits']} store "
        f"hits, {summary['coalesced']} coalesced, "
        f"{summary['simulated']} simulated, {summary['failed']} failed"
    )
    return 1 if summary["failed"] else 0


def _topologies() -> int:
    from repro.experiments.specs import available_topologies

    families = available_topologies()
    width = max(len(f.prefix) for f in families)
    example_width = max(len(f.example) for f in families)
    for family in families:
        print(
            f"{family.prefix:<{width}}  "
            f"{family.example:<{example_width}}  {family.description}"
        )
    return 0


def _engines() -> int:
    from repro.sim import available_engines

    families = available_engines()
    width = max(len(f.name) for f in families)
    for family in families:
        print(f"{family.name:<{width}}  {family.description}")
    return 0


def _routings() -> int:
    from repro.experiments.specs import available_routings

    families = available_routings()
    width = max(len(f.name) for f in families)
    for family in families:
        print(f"{family.name:<{width}}  {family.description}")
    print()
    print(
        "append as a topology-spec suffix, e.g. mesh4x4:adaptive "
        "or faulty:ring16:1@7:adaptive-misroute"
    )
    return 0


def _campaign(rest: list[str]) -> int:
    import argparse
    import pathlib

    from repro.experiments.campaign import Campaign
    from repro.experiments.report import format_execution_summary

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a sweep campaign described by a JSON spec.",
    )
    parser.add_argument("spec", help="campaign spec (JSON file)")
    parser.add_argument("csv", help="output CSV (appended, resumable)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1); any value produces "
        "identical rows because seeds derive from sweep coordinates",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not consult or fill the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: .repro-cache next to "
        "the CSV)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-point wall-clock deadline in seconds; selects the "
        "crash-tolerant executor",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts per crashed / timed-out / failed point "
        "(default 0)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="keep the outcome manifest from the previous run and "
        "skip every point it already marks ok",
    )
    try:
        args = parser.parse_args(rest)
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        if args.timeout is not None and args.timeout <= 0:
            parser.error(f"--timeout must be > 0, got {args.timeout}")
        if args.retries < 0:
            parser.error(f"--retries must be >= 0, got {args.retries}")
    except SystemExit as exc:
        return int(exc.code or 0)
    campaign = Campaign.from_json(pathlib.Path(args.spec).read_text())
    try:
        campaign.validate()
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    results = campaign.execute(
        args.csv,
        progress=lambda done, total, key: print(
            f"[{done}/{total}] {key}"
        ),
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout=args.timeout,
        retries=args.retries,
        resume=args.resume,
    )
    failures = [r for r in results if not r.ok]
    print(f"{len(results)} runs executed; results in {args.csv}")
    if campaign.last_stats is not None:
        print(format_execution_summary(campaign.last_stats))
    if failures:
        for failure in failures:
            print(
                f"FAILED {failure.topology}|{failure.pattern}"
                f"|{failure.rate:.6g}: {failure.error} "
                f"after {failure.attempts} attempt(s)"
            )
        print(
            f"{len(failures)} point(s) failed; re-run with --resume "
            "to retry exactly those"
        )
        return 1
    return 0


def _chaos(rest: list[str]) -> int:
    import argparse
    import json as _json
    import pathlib
    import re
    import sys as _sys

    from repro.experiments.runner import (
        SimulationSettings,
        run_simulation,
    )
    from repro.experiments.specs import (
        parse_pattern,
        parse_topology_routing,
    )
    from repro.noc.config import NocConfig
    from repro.resilience import FaultEvent, FaultPlan

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run one simulation under runtime link faults "
        "with the stall watchdog and periodic invariant audits "
        "attached, then print the resilience report.",
    )
    parser.add_argument("topology", help="topology spec, e.g. mesh4x4")
    parser.add_argument(
        "pattern", help="traffic spec, e.g. uniform or hotspot:0"
    )
    parser.add_argument(
        "rate", type=float, help="injection rate (flits/cycle/source)"
    )
    parser.add_argument(
        "--cycles", type=int, default=20_000, help="run length"
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=4_000,
        help="cycles excluded from the summary metrics",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="SRC:DST@T[:REPAIR_T]",
        help="fail link SRC-DST at cycle T, optionally repairing it "
        "at REPAIR_T; repeatable",
    )
    parser.add_argument(
        "--random-faults",
        metavar="N@T",
        help="fail N random links at cycle T instead of --fail "
        "(deterministic in topology, N, T and --fault-seed)",
    )
    parser.add_argument(
        "--repair-after",
        type=int,
        default=None,
        metavar="D",
        help="with --random-faults: repair each link D cycles after "
        "it failed",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="S",
        help="seed for --random-faults picks (default: --seed)",
    )
    parser.add_argument(
        "--stall",
        type=int,
        default=2_000,
        metavar="N",
        help="stall-watchdog threshold in cycles without a consumed "
        "flit (default 2000; 0 disables)",
    )
    parser.add_argument(
        "--audit",
        type=int,
        default=0,
        metavar="N",
        help="run the full invariant suite every N cycles (0 = off)",
    )
    parser.add_argument(
        "--source-queue",
        type=int,
        default=64,
        metavar="PKTS",
        help="IP memory bound in packets",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also dump the full result dict as JSON here",
    )
    try:
        args = parser.parse_args(rest)
        if args.cycles < 1:
            parser.error(f"--cycles must be >= 1, got {args.cycles}")
        if not 0 <= args.warmup < args.cycles:
            parser.error(
                f"--warmup must be in [0, cycles), got {args.warmup}"
            )
        if args.fail and args.random_faults:
            parser.error("--fail and --random-faults are exclusive")
        if not args.fail and not args.random_faults:
            parser.error("need at least one --fail or --random-faults")
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        topology, routing = parse_topology_routing(args.topology)
        pattern = parse_pattern(args.pattern, topology)
        if args.random_faults:
            match = re.fullmatch(r"(\d+)@(\d+)", args.random_faults)
            if match is None:
                raise ValueError(
                    f"--random-faults must look like N@T, got "
                    f"{args.random_faults!r}"
                )
            plan = FaultPlan.random_faults(
                topology,
                count=int(match.group(1)),
                at=int(match.group(2)),
                repair_after=args.repair_after,
                seed=(
                    args.fault_seed
                    if args.fault_seed is not None
                    else args.seed
                ),
            )
        else:
            events = []
            for spec in args.fail:
                match = re.fullmatch(
                    r"(\d+):(\d+)@(\d+)(?::(\d+))?", spec
                )
                if match is None:
                    raise ValueError(
                        f"--fail must look like SRC:DST@T[:REPAIR_T], "
                        f"got {spec!r}"
                    )
                src, dst, at = (int(match.group(i)) for i in (1, 2, 3))
                events.append(FaultEvent(at, src, dst, "fail"))
                if match.group(4) is not None:
                    events.append(
                        FaultEvent(
                            int(match.group(4)), src, dst, "repair"
                        )
                    )
            plan = FaultPlan(tuple(events))
        plan.validate_for(topology)
    except ValueError as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 2

    settings = SimulationSettings(
        cycles=args.cycles,
        warmup=args.warmup,
        config=NocConfig(source_queue_packets=args.source_queue),
        seed=args.seed,
        fault_plan=plan,
        stall_cycles=args.stall or None,
        invariant_check_interval=args.audit,
    )
    result = run_simulation(
        topology, pattern, args.rate, settings, routing=routing
    )

    for event in plan.events:
        print(
            f"plan: {event.action} {event.src}-{event.dst} "
            f"at cycle {event.time}"
        )
    resilience = result.extra.get("resilience", {})
    for record in resilience.get("fault_events", []):
        residual = (
            "connected"
            if record.get("residual_connected", True)
            else "PARTITIONED"
        )
        print(
            f"cycle {record['time']}: {record['action']} "
            f"{record['link']} — killed "
            f"{record.get('packets_killed', 0)} packet(s), dropped "
            f"{record.get('flits_dropped', 0)} flit(s), "
            f"residual graph {residual}"
        )
    print(
        f"degraded={result.degraded} "
        f"flits_dropped={result.flits_dropped} "
        f"packets_killed={result.packets_killed} "
        f"rerouted={resilience.get('packets_rerouted', 0)} "
        f"delivered={result.packets_delivered} "
        f"throughput={result.throughput:.6g}"
    )
    if result.degraded and "stall" in result.extra:
        stall = result.extra["stall"]
        print(f"stall: {stall.get('reason', '?')}")
        snapshot = {
            k: v
            for k, v in stall.items()
            if k not in ("reason", "blocked_routers")
        }
        print(f"stall snapshot: {_json.dumps(snapshot, sort_keys=True)}")
    if args.json is not None:
        pathlib.Path(args.json).write_text(
            _json.dumps(result.to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"full result -> {args.json}")
    return 1 if result.degraded else 0


def _trace(rest: list[str]) -> int:
    import argparse
    import contextlib
    import sys as _sys

    from repro.experiments.specs import (
        parse_pattern,
        parse_topology_routing,
    )
    from repro.noc.config import NocConfig
    from repro.noc.network import Network
    from repro.obs import (
        FlitTracer,
        KernelProfiler,
        TimelineObserver,
        TraceSink,
    )
    from repro.traffic.base import TrafficSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one simulation with the observability layer "
        "attached and stream it as JSONL: flit lifecycle records, "
        "per-link utilization, the windowed timeline, and a kernel "
        "profile.",
    )
    parser.add_argument("topology", help="topology spec, e.g. ring16")
    parser.add_argument(
        "pattern", help="traffic spec, e.g. uniform or hotspot:0"
    )
    parser.add_argument(
        "rate", type=float, help="injection rate (flits/cycle/source)"
    )
    parser.add_argument(
        "--cycles", type=int, default=2_000, help="run length"
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=0,
        help="cycles excluded from the summary metrics",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--window",
        type=int,
        default=100,
        metavar="W",
        help="utilization-timeline window width in cycles",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the JSONL here instead of stdout",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="cap flit-lifecycle records (dropped ones are counted "
        "in the summary)",
    )
    parser.add_argument(
        "--no-flits",
        action="store_true",
        help="skip per-flit lifecycle records (timeline and summary "
        "only)",
    )
    parser.add_argument(
        "--source-queue",
        type=int,
        default=64,
        metavar="PKTS",
        help="IP memory bound in packets",
    )
    try:
        args = parser.parse_args(rest)
        if args.cycles < 1:
            parser.error(f"--cycles must be >= 1, got {args.cycles}")
        if not 0 <= args.warmup < args.cycles:
            parser.error(
                f"--warmup must be in [0, cycles), got {args.warmup}"
            )
        if args.window < 1:
            parser.error(f"--window must be >= 1, got {args.window}")
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        topology, routing = parse_topology_routing(args.topology)
        pattern = parse_pattern(args.pattern, topology)
    except ValueError as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 2

    network = Network(
        topology,
        routing,
        config=NocConfig(source_queue_packets=args.source_queue),
        traffic=TrafficSpec(pattern, args.rate),
        seed=args.seed,
    )
    with contextlib.ExitStack() as stack:
        if args.out is not None:
            sink = stack.enter_context(
                TraceSink.to_path(args.out, limit=args.limit)
            )
        else:
            sink = TraceSink(_sys.stdout, limit=args.limit)
        sink.write(
            {
                "type": "meta",
                "topology": args.topology,
                "pattern": args.pattern,
                "rate": args.rate,
                "cycles": args.cycles,
                "warmup": args.warmup,
                "seed": args.seed,
                "window": args.window,
                "num_nodes": topology.num_nodes,
            }
        )
        tracer = None
        if not args.no_flits:
            tracer = FlitTracer(network, sink)
        timeline_observer = TimelineObserver(
            network, window=args.window
        )
        profiler = KernelProfiler(network.simulator)
        result = network.run(cycles=args.cycles, warmup=args.warmup)
        if tracer is not None:
            tracer.detach()
        # --limit bounds the flit-lifecycle stream; the trailing
        # link/timeline/summary records always go out.
        flit_records_dropped = sink.records_dropped
        sink.limit = None
        timeline = timeline_observer.timeline()
        for node, port, dst, utilization in timeline.busiest_links(
            count=len(timeline.links)
        ):
            attrs = network.link_attrs_of(node, port)
            sink.write(
                {
                    "type": "link",
                    "node": node,
                    "port": port,
                    "dst": dst,
                    "kind": attrs.kind,
                    "latency": attrs.latency,
                    "flits": timeline.link_totals()[(node, port)],
                    "utilization": round(utilization, 6),
                }
            )
        sink.write({"type": "timeline", **timeline.to_dict()})
        sink.write(
            {
                "type": "summary",
                "kernel": profiler.summary(),
                "result": {
                    "throughput": result.throughput,
                    "avg_latency": result.avg_latency,
                    "packets_delivered": result.packets_delivered,
                    "packets_generated": result.packets_generated,
                    "events_processed": result.events_processed,
                },
                "peak_buffer_occupancy": {
                    str(router.node): router.peak_buffer_occupancy()
                    for router in network.routers
                },
                "peak_ip_backlog": {
                    str(ni.node): ni.peak_backlog
                    for ni in network.interfaces
                },
                "flit_records_dropped": flit_records_dropped,
            }
        )
    if args.out is not None:
        busiest = timeline.busiest_links(3)
        print(
            f"{sink.records_written} records -> {args.out}; "
            "busiest links: "
            + ", ".join(
                f"{node}->{dst} ({port}) {utilization:.3f}"
                for node, port, dst, utilization in busiest
            ),
            file=_sys.stderr,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("info", "-h", "--help"):
        return _info()
    command, rest = argv[0], argv[1:]
    if command == "figures":
        from repro.experiments.figures import main as figures_main

        return figures_main(rest)
    if command == "ablations":
        from repro.experiments.ablations import main as ablations_main

        return ablations_main(rest)
    if command == "campaign":
        return _campaign(rest)
    if command == "circulant":
        from repro.experiments.circulant import main as circulant_main

        return circulant_main(rest)
    if command == "mesh3d":
        from repro.experiments.mesh3d import main as mesh3d_main

        return mesh3d_main(rest)
    if command == "topologies":
        return _topologies()
    if command == "engines":
        return _engines()
    if command == "routings":
        return _routings()
    if command == "drain":
        from repro.experiments.drain import main as drain_main

        return drain_main(rest)
    if command == "trace":
        return _trace(rest)
    if command == "chaos":
        return _chaos(rest)
    if command == "serve":
        return _serve(rest)
    if command == "submit":
        return _submit(rest)
    print(f"unknown command {command!r}; try: python -m repro info")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
