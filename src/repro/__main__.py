"""Top-level command-line interface.

::

    python -m repro info                 # library and paper summary
    python -m repro figures fig10 ...    # == repro.experiments.figures
    python -m repro ablations vcs ...    # == repro.experiments.ablations
    python -m repro campaign SPEC CSV    # declarative sweep
    python -m repro trace ring16 hotspot:0 0.1   # JSONL observability
"""

from __future__ import annotations

import sys


def _info() -> int:
    from repro import __version__
    from repro.experiments.figures import ALL_FIGURES
    from repro.experiments.ablations import ALL_ABLATIONS

    print(f"repro {__version__}")
    print(
        "Reproduction of Bononi & Concer, 'Simulation and Analysis "
        "of Network on Chip\nArchitectures: Ring, Spidergon and 2D "
        "Mesh', DATE 2006."
    )
    print()
    print("figures:  ", " ".join(sorted(ALL_FIGURES)))
    print("ablations:", " ".join(sorted(ALL_ABLATIONS)))
    print()
    print(
        "usage: python -m repro "
        "{info|figures|ablations|campaign SPEC.json OUT.csv"
        "|trace TOPOLOGY PATTERN RATE} [args...]\n"
        "       (figures and campaign accept --workers N; campaign "
        "also --no-cache, --cache-dir DIR;\n"
        "        trace accepts --cycles, --warmup, --seed, --window, "
        "--out, --limit, --no-flits)"
    )
    return 0


def _campaign(rest: list[str]) -> int:
    import argparse
    import pathlib

    from repro.experiments.campaign import Campaign
    from repro.experiments.report import format_execution_summary

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Run a sweep campaign described by a JSON spec.",
    )
    parser.add_argument("spec", help="campaign spec (JSON file)")
    parser.add_argument("csv", help="output CSV (appended, resumable)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1); any value produces "
        "identical rows because seeds derive from sweep coordinates",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not consult or fill the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache location (default: .repro-cache next to "
        "the CSV)",
    )
    try:
        args = parser.parse_args(rest)
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
    except SystemExit as exc:
        return int(exc.code or 0)
    campaign = Campaign.from_json(pathlib.Path(args.spec).read_text())
    try:
        campaign.validate()
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    results = campaign.execute(
        args.csv,
        progress=lambda done, total, key: print(
            f"[{done}/{total}] {key}"
        ),
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )
    print(f"{len(results)} runs executed; results in {args.csv}")
    if campaign.last_stats is not None:
        print(format_execution_summary(campaign.last_stats))
    return 0


def _trace(rest: list[str]) -> int:
    import argparse
    import contextlib
    import sys as _sys

    from repro.experiments.specs import parse_pattern, parse_topology
    from repro.noc.config import NocConfig
    from repro.noc.network import Network
    from repro.obs import (
        FlitTracer,
        KernelProfiler,
        TimelineObserver,
        TraceSink,
    )
    from repro.traffic.base import TrafficSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one simulation with the observability layer "
        "attached and stream it as JSONL: flit lifecycle records, "
        "per-link utilization, the windowed timeline, and a kernel "
        "profile.",
    )
    parser.add_argument("topology", help="topology spec, e.g. ring16")
    parser.add_argument(
        "pattern", help="traffic spec, e.g. uniform or hotspot:0"
    )
    parser.add_argument(
        "rate", type=float, help="injection rate (flits/cycle/source)"
    )
    parser.add_argument(
        "--cycles", type=int, default=2_000, help="run length"
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=0,
        help="cycles excluded from the summary metrics",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--window",
        type=int,
        default=100,
        metavar="W",
        help="utilization-timeline window width in cycles",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the JSONL here instead of stdout",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="cap flit-lifecycle records (dropped ones are counted "
        "in the summary)",
    )
    parser.add_argument(
        "--no-flits",
        action="store_true",
        help="skip per-flit lifecycle records (timeline and summary "
        "only)",
    )
    parser.add_argument(
        "--source-queue",
        type=int,
        default=64,
        metavar="PKTS",
        help="IP memory bound in packets",
    )
    try:
        args = parser.parse_args(rest)
        if args.cycles < 1:
            parser.error(f"--cycles must be >= 1, got {args.cycles}")
        if not 0 <= args.warmup < args.cycles:
            parser.error(
                f"--warmup must be in [0, cycles), got {args.warmup}"
            )
        if args.window < 1:
            parser.error(f"--window must be >= 1, got {args.window}")
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        topology = parse_topology(args.topology)
        pattern = parse_pattern(args.pattern, topology)
    except ValueError as exc:
        print(f"error: {exc}", file=_sys.stderr)
        return 2

    network = Network(
        topology,
        config=NocConfig(source_queue_packets=args.source_queue),
        traffic=TrafficSpec(pattern, args.rate),
        seed=args.seed,
    )
    with contextlib.ExitStack() as stack:
        if args.out is not None:
            sink = stack.enter_context(
                TraceSink.to_path(args.out, limit=args.limit)
            )
        else:
            sink = TraceSink(_sys.stdout, limit=args.limit)
        sink.write(
            {
                "type": "meta",
                "topology": args.topology,
                "pattern": args.pattern,
                "rate": args.rate,
                "cycles": args.cycles,
                "warmup": args.warmup,
                "seed": args.seed,
                "window": args.window,
                "num_nodes": topology.num_nodes,
            }
        )
        tracer = None
        if not args.no_flits:
            tracer = FlitTracer(network, sink)
        timeline_observer = TimelineObserver(
            network, window=args.window
        )
        profiler = KernelProfiler(network.simulator)
        result = network.run(cycles=args.cycles, warmup=args.warmup)
        if tracer is not None:
            tracer.detach()
        # --limit bounds the flit-lifecycle stream; the trailing
        # link/timeline/summary records always go out.
        flit_records_dropped = sink.records_dropped
        sink.limit = None
        timeline = timeline_observer.timeline()
        for node, port, dst, utilization in timeline.busiest_links(
            count=len(timeline.links)
        ):
            sink.write(
                {
                    "type": "link",
                    "node": node,
                    "port": port,
                    "dst": dst,
                    "flits": timeline.link_totals()[(node, port)],
                    "utilization": round(utilization, 6),
                }
            )
        sink.write({"type": "timeline", **timeline.to_dict()})
        sink.write(
            {
                "type": "summary",
                "kernel": profiler.summary(),
                "result": {
                    "throughput": result.throughput,
                    "avg_latency": result.avg_latency,
                    "packets_delivered": result.packets_delivered,
                    "packets_generated": result.packets_generated,
                    "events_processed": result.events_processed,
                },
                "peak_buffer_occupancy": {
                    str(router.node): router.peak_buffer_occupancy()
                    for router in network.routers
                },
                "peak_ip_backlog": {
                    str(ni.node): ni.peak_backlog
                    for ni in network.interfaces
                },
                "flit_records_dropped": flit_records_dropped,
            }
        )
    if args.out is not None:
        busiest = timeline.busiest_links(3)
        print(
            f"{sink.records_written} records -> {args.out}; "
            "busiest links: "
            + ", ".join(
                f"{node}->{dst} ({port}) {utilization:.3f}"
                for node, port, dst, utilization in busiest
            ),
            file=_sys.stderr,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("info", "-h", "--help"):
        return _info()
    command, rest = argv[0], argv[1:]
    if command == "figures":
        from repro.experiments.figures import main as figures_main

        return figures_main(rest)
    if command == "ablations":
        from repro.experiments.ablations import main as ablations_main

        return ablations_main(rest)
    if command == "campaign":
        return _campaign(rest)
    if command == "trace":
        return _trace(rest)
    print(f"unknown command {command!r}; try: python -m repro info")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
